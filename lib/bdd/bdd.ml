type t =
  | Zero
  | One
  | Node of { v : int; lo : t; hi : t; id : int }

let id = function Zero -> 0 | One -> 1 | Node n -> n.id
let level = function Zero | One -> max_int | Node n -> n.v

let zero = Zero
let one = One

(* Global unique table: (var, lo id, hi id) -> node. *)
let unique : (int * int * int, t) Hashtbl.t = Hashtbl.create 65536
let next_id = ref 2

(* Observability hook, fired once per fresh node allocation. [None]
   (the default) costs a single match per allocation. *)
let alloc_hook : (unit -> unit) option ref = ref None
let set_alloc_hook h = alloc_hook := h

let mk v lo hi =
  if lo == hi then lo
  else
    let key = (v, id lo, id hi) in
    match Hashtbl.find_opt unique key with
    | Some n -> n
    | None ->
        let n = Node { v; lo; hi; id = !next_id } in
        incr next_id;
        Hashtbl.add unique key n;
        (match !alloc_hook with None -> () | Some f -> f ());
        n

let var i =
  if i < 0 then invalid_arg "Bdd.var";
  mk i Zero One

let nvar i =
  if i < 0 then invalid_arg "Bdd.nvar";
  mk i One Zero

(* Memo tables for the operations. *)
let neg_memo : (int, t) Hashtbl.t = Hashtbl.create 4096
let and_memo : (int * int, t) Hashtbl.t = Hashtbl.create 65536
let xor_memo : (int * int, t) Hashtbl.t = Hashtbl.create 4096
let restrict_memo : (int * int * bool, t) Hashtbl.t = Hashtbl.create 4096

let clear_caches () =
  Hashtbl.reset neg_memo;
  Hashtbl.reset and_memo;
  Hashtbl.reset xor_memo;
  Hashtbl.reset restrict_memo

let rec neg t =
  match t with
  | Zero -> One
  | One -> Zero
  | Node { v; lo; hi; id } -> (
      match Hashtbl.find_opt neg_memo id with
      | Some r -> r
      | None ->
          let r = mk v (neg lo) (neg hi) in
          Hashtbl.add neg_memo id r;
          r)

let branches t v =
  match t with
  | Node n when n.v = v -> (n.lo, n.hi)
  | _ -> (t, t)

let rec conj a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, t | t, One -> t
  | _ when a == b -> a
  | _ ->
      let ia = id a and ib = id b in
      let key = if ia < ib then (ia, ib) else (ib, ia) in
      ( match Hashtbl.find_opt and_memo key with
      | Some r -> r
      | None ->
          let v = min (level a) (level b) in
          let alo, ahi = branches a v and blo, bhi = branches b v in
          let r = mk v (conj alo blo) (conj ahi bhi) in
          Hashtbl.add and_memo key r;
          r )

let disj a b = neg (conj (neg a) (neg b))

let rec xor a b =
  match (a, b) with
  | Zero, t | t, Zero -> t
  | One, t | t, One -> neg t
  | _ when a == b -> Zero
  | _ ->
      let ia = id a and ib = id b in
      let key = if ia < ib then (ia, ib) else (ib, ia) in
      ( match Hashtbl.find_opt xor_memo key with
      | Some r -> r
      | None ->
          let v = min (level a) (level b) in
          let alo, ahi = branches a v and blo, bhi = branches b v in
          let r = mk v (xor alo blo) (xor ahi bhi) in
          Hashtbl.add xor_memo key r;
          r )

let imp a b = disj (neg a) b
let iff a b = neg (xor a b)
let ite c t e = disj (conj c t) (conj (neg c) e)
let conj_list ts = List.fold_left conj One ts
let disj_list ts = List.fold_left disj Zero ts

let rec restrict v b t =
  match t with
  | Zero | One -> t
  | Node n when n.v > v -> t
  | Node n when n.v = v -> if b then n.hi else n.lo
  | Node n -> (
      let key = (n.id, v, b) in
      match Hashtbl.find_opt restrict_memo key with
      | Some r -> r
      | None ->
          let r = mk n.v (restrict v b n.lo) (restrict v b n.hi) in
          Hashtbl.add restrict_memo key r;
          r)

let exists_var v t = disj (restrict v false t) (restrict v true t)
let exists vs t = List.fold_left (fun t v -> exists_var v t) t vs

let is_zero t = t == Zero
let is_one t = t == One
let equal a b = a == b
let compare a b = Int.compare (id a) (id b)
let hash t = id t
let is_sat t = not (is_zero t)
let implies a b = is_zero (conj a (neg b))

let any_sat t =
  let rec go acc = function
    | Zero -> raise Not_found
    | One -> List.rev acc
    | Node { v; lo; hi; _ } ->
        if is_zero hi then go ((v, false) :: acc) lo
        else go ((v, true) :: acc) hi
  in
  go [] t

let all_sat t =
  let rec go acc t () =
    match t with
    | Zero -> Seq.Nil
    | One -> Seq.Cons (List.rev acc, Seq.empty)
    | Node { v; lo; hi; _ } ->
        Seq.append (go ((v, false) :: acc) lo) (go ((v, true) :: acc) hi) ()
  in
  go [] t

let sat_count ~nvars t =
  let lvl u = match u with Zero | One -> nvars | Node n -> n.v in
  let memo = Hashtbl.create 256 in
  let pow2 n = Float.of_int 1 *. Float.pow 2. (Float.of_int n) in
  let rec go t =
    match t with
    | Zero -> 0.
    | One -> 1.
    | Node { v; lo; hi; id } -> (
        match Hashtbl.find_opt memo id with
        | Some c -> c
        | None ->
            let c =
              (go lo *. pow2 (lvl lo - v - 1))
              +. (go hi *. pow2 (lvl hi - v - 1))
            in
            Hashtbl.add memo id c;
            c)
  in
  go t *. pow2 (min (lvl t) nvars)

let size t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node { lo; hi; id; _ } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          go lo;
          go hi
        end
  in
  go t;
  Hashtbl.length seen

let support t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node { v; lo; hi; id } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          Hashtbl.replace vars v ();
          go lo;
          go hi
        end
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval env = function
  | Zero -> false
  | One -> true
  | Node { v; lo; hi; _ } -> if env v then eval env hi else eval env lo

let rec pp fmt = function
  | Zero -> Format.pp_print_string fmt "F"
  | One -> Format.pp_print_string fmt "T"
  | Node { v; lo; hi; _ } ->
      Format.fprintf fmt "@[<hv 1>(x%d?%a:%a)@]" v pp hi pp lo

let node_count () = Hashtbl.length unique
