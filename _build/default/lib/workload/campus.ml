(** The "campus network" corpus profile, calibrated to Section 3.2:

    - 11,088 ACLs: 37.7% (4,180) with conflicting overlaps, of which 27%
      (1,129) have more than 20 conflicts; 18.6% (2,062) with
      non-trivial conflicts (one rule not a subset of the other), of
      which 16.3% (336) exceed 20.
    - 169 route-maps: two with overlapping stanzas, one of them with
      three overlapping pairs of which two conflict.

    [scale] shrinks every group proportionally (floor, minimum 1 per
    non-empty group) so tests and quick runs stay fast; the percentages
    are preserved to within rounding. *)

let default_seed = 1421 (* the paper's device count, for flavour *)

type t = {
  acls : Config.Acl.t list;
  route_map_db : Config.Database.t;
  route_maps : Config.Route_map.t list;
}

(* Group sizes at full scale. *)
let total_acls = 11_088
let conflicting = 4_180 (* 37.7% *)
let heavy_conflicting = 1_129 (* 27% of conflicting *)
let nontrivial = 2_062 (* 18.6% of total *)
let heavy_nontrivial = 336 (* 16.3% of nontrivial *)

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

let acls ?(seed = default_seed) ?(scale = 1.0) () =
  let rng = Random.State.make [| seed |] in
  let n_plain = scaled scale (total_acls - conflicting) in
  let n_trivial_only = scaled scale (conflicting - nontrivial) in
  (* Non-trivial group, split into heavy (k > 20) and light. Among the
     light non-trivial ones, enough get a large trailing-deny fan-out to
     reach the heavy-conflict quota. *)
  let n_nontrivial_heavy = scaled scale heavy_nontrivial in
  let n_nontrivial_light = scaled scale (nontrivial - heavy_nontrivial) in
  let heavy_conflict_target = scaled scale heavy_conflicting in
  (* heavy non-trivial ACLs are automatically heavy-conflict (2k+p>20) *)
  let n_light_heavy_conflict =
    max 0 (heavy_conflict_target - n_nontrivial_heavy)
  in
  let plain =
    List.init n_plain (fun i ->
        Acl_gen.make ~rng
          ~name:(Printf.sprintf "CAMPUS_PLAIN_%d" i)
          ~plain:(3 + Random.State.int rng 10)
          ~crossing:0 ~trailing_deny_any:false)
  in
  (* Trivial-only: conflicts = p (all subset pairs), kept at <= 20. *)
  let trivial_only =
    List.init n_trivial_only (fun i ->
        Acl_gen.make ~rng
          ~name:(Printf.sprintf "CAMPUS_TRIVIAL_%d" i)
          ~plain:(3 + Random.State.int rng 10)
          ~crossing:0 ~trailing_deny_any:true)
  in
  (* Light non-trivial: k in 1..5. The first [n_light_heavy_conflict]
     get p large enough that 2k + p > 20. *)
  let nontrivial_light =
    List.init n_nontrivial_light (fun i ->
        let k = 1 + Random.State.int rng 5 in
        let p =
          if i < n_light_heavy_conflict then 21 + Random.State.int rng 10
          else Random.State.int rng (max 1 (19 - (2 * k)))
        in
        Acl_gen.make ~rng
          ~name:(Printf.sprintf "CAMPUS_NT_LIGHT_%d" i)
          ~plain:p ~crossing:k ~trailing_deny_any:true)
  in
  let nontrivial_heavy =
    List.init n_nontrivial_heavy (fun i ->
        Acl_gen.make ~rng
          ~name:(Printf.sprintf "CAMPUS_NT_HEAVY_%d" i)
          ~plain:(Random.State.int rng 10)
          ~crossing:(21 + Random.State.int rng 10)
          ~trailing_deny_any:true)
  in
  plain @ trivial_only @ nontrivial_light @ nontrivial_heavy

let route_maps ?(seed = default_seed) ?(scale = 1.0) () =
  let rng = Random.State.make [| seed + 1 |] in
  let actions = [| Config.Action.Permit; Config.Action.Deny |] in
  let action () = actions.(Random.State.int rng 2) in
  let db = ref Config.Database.empty in
  let maps = ref [] in
  let n_plain = scaled scale 167 in
  for i = 0 to n_plain - 1 do
    let b =
      Route_map_gen.make ~db:!db
        ~name:(Printf.sprintf "CAMPUS_RM_%d" i)
        ~disjoint:(List.init (2 + Random.State.int rng 4) (fun _ -> action ()))
        ~windows:[] ~catch_all:false
    in
    db := b.Route_map_gen.db;
    maps := b.Route_map_gen.route_map :: !maps
  done;
  (* One map with a single overlapping pair. *)
  let b1 =
    Route_map_gen.make ~db:!db ~name:"CAMPUS_RM_PAIR"
      ~disjoint:[ Config.Action.Permit ]
      ~windows:[ (Config.Action.Permit, Config.Action.Permit) ]
      ~catch_all:false
  in
  db := b1.Route_map_gen.db;
  maps := b1.Route_map_gen.route_map :: !maps;
  (* One map with three overlapping pairs, two of them conflicting. *)
  let b2 = Route_map_gen.triple_overlap ~db:!db ~name:"CAMPUS_RM_TRIPLE" in
  db := b2.Route_map_gen.db;
  maps := b2.Route_map_gen.route_map :: !maps;
  (!db, List.rev !maps)

let generate ?(seed = default_seed) ?(scale = 1.0) () =
  let route_map_db, rms = route_maps ~seed ~scale () in
  { acls = acls ~seed ~scale (); route_map_db; route_maps = rms }
