(** Permit/deny actions shared by every Cisco matching construct. *)

type t = Permit | Deny

val to_string : t -> string
val of_string : string -> t option
val flip : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
