(** Route-policy search and stanza verification — the analogue of
    Batfish's [searchRoutePolicies]. *)

val spec_as_path_list : Sre.As_path_regex.t -> Config.As_path_list.t
(** A spec's as-path regex as an anonymous single-entry permit list, so
    it can become a context atom. *)

val spec_space : Symbolic.Route_ctx.t -> Spec.t -> Symbdd.Bdd.t
(** Compile a spec's match condition into the route space. The context
    must have been created with the spec's regexes in scope (use
    {!context_for}). *)

val context_for :
  Config.Database.t -> Config.Route_map.t -> Spec.t -> Symbolic.Route_ctx.t
(** A context covering both the route-map and the spec. *)

val search :
  Config.Database.t ->
  Config.Route_map.t ->
  constraint_spec:Spec.t ->
  action:Config.Action.t ->
  Bgp.Route.t option
(** A route the policy treats with the given action inside the
    spec-shaped constraint, if any. *)

type verdict =
  | Verified
  | Wrong_action of { expected : Config.Action.t; got : Config.Action.t }
  | Match_too_broad of Bgp.Route.t (* stanza matches, spec does not *)
  | Match_too_narrow of Bgp.Route.t (* spec matches, stanza does not *)
  | Wrong_sets of { expected : Config.Transform.t; got : Config.Transform.t }
  | Undefined_references of string list

val pp_verdict : Format.formatter -> verdict -> unit

val verify_stanza :
  Config.Database.t -> Config.Route_map.t -> Spec.t -> verdict
(** Verify that a single-stanza route-map implements a spec exactly:
    same match set, same action, same transform. Counterexamples are
    concrete routes. @raise Invalid_argument when the map does not have
    exactly one stanza. *)
