(* Quickstart: the paper's running example in ~40 lines.

   An existing route-map ISP_OUT is extended with a new stanza described
   in plain English. The pipeline classifies the query, synthesizes the
   stanza with the (simulated) LLM, verifies it against the extracted
   JSON spec, and disambiguates the insertion point by asking questions;
   here a scripted "user" always prefers the new behaviour, reproducing
   Figure 2(a).

   Run with: dune exec examples/quickstart.exe *)

let existing_config =
  {|ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300|}

let intent =
  "Write a route-map stanza that permits routes containing the prefix \
   100.0.0.0/16 with mask length less than or equal to 23 and tagged with \
   the community 300:3. Their MED value should be set to 55."

let () =
  let db =
    match Config.Parser.parse existing_config with
    | Ok db -> db
    | Error m -> failwith m
  in
  Format.printf "Existing configuration:@.%s@.@." existing_config;
  Format.printf "User intent:@.  %s@.@." intent;
  (* The "user" examines each differential example and always chooses
     the new stanza's behaviour. *)
  let oracle q =
    Format.printf "%a@.@.User picks OPTION 1.@.@."
      Clarify.Disambiguator.pp_question q;
    Clarify.Disambiguator.Prefer_new
  in
  match
    Clarify.Pipeline.run_route_map_update
      ~llm:(Llm.Mock_llm.create ())
      ~oracle ~db ~target:"ISP_OUT" ~prompt:intent ()
  with
  | Error e -> failwith (Clarify.Pipeline.error_to_string e)
  | Ok report ->
      Format.printf "Synthesis attempts: %d, LLM calls: %d, questions: %d@.@."
        report.Clarify.Pipeline.synthesis_attempts
        report.Clarify.Pipeline.llm_calls
        (List.length report.Clarify.Pipeline.questions);
      Format.printf "Updated configuration:@.%s@."
        (Config.Parser.to_string report.Clarify.Pipeline.db)
