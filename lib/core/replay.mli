(** Deterministic replay of a recorded flight-recorder session.

    [run_events log] rebuilds the session from the log — initial
    configuration, target, prompt and mode from [session_start],
    synthesis responses fed verbatim to a replay {!Llm.Mock_llm}, user
    answers fed to a scripted oracle — re-runs the pipeline under an
    in-memory recorder, and compares the two event streams pairwise.
    Identical streams mean the session reproduced bit-for-bit
    (including the final configuration, carried by [session_end]); the
    first mismatch is reported as a {!divergence}, which makes any
    recorded bug report a reproducible artifact. *)

type divergence = {
  index : int; (* 0-based position in the event stream *)
  recorded : Telemetry.Event.t option; (* [None]: replay ran long *)
  replayed : Telemetry.Event.t option; (* [None]: replay stopped short *)
}

type outcome = Identical | Diverged of divergence

type report = {
  pipeline : string; (* "route_map" or "acl" *)
  recorded_events : int;
  replayed_events : int;
  outcome : outcome;
}

val run_events : Telemetry.Event.t list -> (report, string) result
(** [Error] means the log itself is unusable (empty, no [session_start],
    unparseable recorded config); divergences are reported in the
    {!report}, not as [Error]. *)

val run_file : string -> (report, string) result

val identical : report -> bool
val pp_report : Format.formatter -> report -> unit
