(** Observability counters for the symbolic engine. Referencing this
    module also wires the BDD allocation hook to the [obs] lifecycle. *)

val search_filters_calls : Obs.Counter.t
val search_route_policies_calls : Obs.Counter.t
val compare_route_policies_calls : Obs.Counter.t
val compare_acls_calls : Obs.Counter.t
val bdd_nodes : Obs.Counter.t
