(** Behavioural diff of two ACLs, used to generate differential packet
    examples for ACL insertion disambiguation. *)

open Symbdd
module Ps = Symbolic.Packet_space

type difference = {
  packet : Config.Packet.t;
  action_a : Config.Action.t;
  action_b : Config.Action.t;
  rule_a : int option; (* handling rule seq under A; None = implicit deny *)
  rule_b : int option;
}

(** All behavioural differences, one example packet per differing pair
    of execution cells, capped at [limit]. Reaching the cap exits the
    cell product immediately, so [first_difference] stops at the first
    differing pair instead of scanning the remaining O(n²) cells. *)
let compare ?(limit = max_int) (a : Config.Acl.t) (b : Config.Acl.t) =
  Obs.Counter.incr Metrics.compare_acls_calls;
  let cells_a = Ps.exec a and cells_b = Ps.exec b in
  let out = ref [] in
  let count = ref 0 in
  (try
     List.iter
       (fun (ca : Ps.cell) ->
         List.iter
           (fun (cb : Ps.cell) ->
             if !count >= limit then raise_notrace Exit;
             if not (Config.Action.equal ca.action cb.action) then
               match Ps.to_packet (Bdd.conj ca.guard cb.guard) with
               | None -> ()
               | Some packet ->
                   out :=
                     {
                       packet;
                       action_a = ca.action;
                       action_b = cb.action;
                       rule_a = ca.rule_seq;
                       rule_b = cb.rule_seq;
                     }
                     :: !out;
                   incr count)
           cells_b)
       cells_a
   with Exit -> ());
  List.rev !out

let first_difference a b =
  match compare ~limit:1 a b with [] -> None | d :: _ -> Some d

let equal_behavior a b = first_difference a b = None

(* ------------------------------------------------------------------ *)
(* Batch adjacent-insertion analysis — the ACL mirror of
   [Compare_route_policies.adjacent_insertions]; see DESIGN.md §11.
   ACLs carry no transforms, so position [i] is a boundary exactly when
   the new rule's action differs from rule [i]'s and the region
   [cell_i.guard ∧ match(new)] is satisfiable. *)

let naive_chunk ~target rule (start, len) =
  let acl_at p = Config.Acl.insert_at target p rule in
  List.filter_map
    (fun i ->
      match first_difference (acl_at i) (acl_at (i + 1)) with
      | None -> None
      | Some d -> Some (i, d))
    (List.init len (fun k -> start + k))

(* Boundaries of one candidate rule against a pre-executed partition of
   the target: position [i] is a boundary exactly when the actions
   differ and [cell_i.guard ∧ match(rule)] is satisfiable. *)
let cell_boundaries cells rule (start, len) =
  let match_new = Ps.of_rule rule in
  List.filter_map
    (fun i ->
      let (c : Ps.cell) = cells.(i) in
      if Config.Action.equal rule.Config.Acl.action c.action then None
      else
        match Ps.to_packet (Bdd.conj c.guard match_new) with
        | None -> None
        | Some packet ->
            (* Both ACLs resequence, putting the new rule and rule i at
               seq (i+1)*10 in their respective lists. *)
            let seq = Some ((i + 1) * 10) in
            Some
              ( i,
                {
                  packet;
                  action_a = rule.Config.Acl.action;
                  action_b = c.action;
                  rule_a = seq;
                  rule_b = seq;
                } ))
    (List.init len (fun k -> start + k))

let incremental_chunk ~(target : Config.Acl.t) (rule : Config.Acl.rule)
    (start, len) =
  Obs.Counter.incr Metrics.adjacent_contexts;
  Obs.Counter.incr ~by:(max 0 (len - 1)) Metrics.adjacent_prefix_reuse;
  let cells = Array.of_list (Ps.exec target) in
  cell_boundaries cells rule (start, len)

let adjacent_insertions ?naive ?pool ~(target : Config.Acl.t)
    (rule : Config.Acl.rule) =
  Obs.Counter.incr Metrics.adjacent_insertions_calls;
  let t0 = Obs.now () in
  let naive =
    match naive with Some b -> b | None -> Boundary_mode.naive_requested ()
  in
  let run_chunk =
    if naive then naive_chunk ~target rule else incremental_chunk ~target rule
  in
  let n = List.length target.Config.Acl.rules in
  let result =
    match pool with
    | Some pool when Parallel.Pool.domains pool > 1 && n > 1 ->
        if naive then
          (* Position-sized tasks: each inserts the rule at one
             boundary, so a pathological position is stolen around
             rather than serializing a coarse chunk. *)
          List.concat
            (Parallel.Pool.map pool ~f:run_chunk
               (Parallel.Pool.ranges ~grain:1 n))
        else begin
          (* Execute the target's partition (and compile the new rule's
             match) once into a frozen base; workers walk stealable
             position slices under private deltas instead of
             re-executing per domain. Slices of a few positions keep
             per-task bookkeeping negligible while leaving plenty to
             steal when widths are skewed. *)
          let base = Bdd.Manager.create () in
          let cells =
            Bdd.with_manager base (fun () ->
                Obs.Counter.incr Metrics.adjacent_contexts;
                let cells = Array.of_list (Ps.exec target) in
                ignore (Ps.of_rule rule);
                cells)
          in
          Bdd.Manager.freeze base;
          Obs.Counter.incr ~by:(max 0 (n - 1)) Metrics.adjacent_prefix_reuse;
          List.concat
            (Parallel.Pool.map ~bdd_base:base pool
               ~f:(fun slice -> cell_boundaries cells rule slice)
               (Parallel.Pool.ranges ~grain:8 n))
        end
    | _ -> if n = 0 then [] else run_chunk (0, n)
  in
  Obs.Histogram.observe_ns Metrics.boundary_ns ((Obs.now () -. t0) *. 1e9);
  result

(* ------------------------------------------------------------------ *)
(* Multi-rule batch sweep — the ACL mirror of
   [Compare_route_policies.batch_insertions]; see DESIGN.md §12. The
   packet space has a fixed variable set, so witnesses are trivially
   independent of how the work is sharded across a pool. *)

type pair_kind = Pair_disjoint | Pair_overlap | Pair_conflict of difference

type batch_sweep = {
  per_candidate : (int * difference) list array;
  overlaps : (int * int) list;
  conflicts : (int * int * difference) list;
}

let batch_insertions ?pool ~(target : Config.Acl.t) rules =
  let candidates = Array.of_list rules in
  let ncand = Array.length candidates in
  if ncand = 0 then { per_candidate = [||]; overlaps = []; conflicts = [] }
  else begin
    Obs.Counter.incr Metrics.adjacent_insertions_calls;
    let t0 = Obs.now () in
    let n = List.length target.Config.Acl.rules in
    let bounds_task ks =
      Obs.Counter.incr Metrics.adjacent_contexts;
      let cells = Array.of_list (Ps.exec target) in
      List.map (fun k -> (k, cell_boundaries cells candidates.(k) (0, n))) ks
    in
    let classify_pair (i, j) =
      let ri = candidates.(i) and rj = candidates.(j) in
      let region = Bdd.conj (Ps.of_rule ri) (Ps.of_rule rj) in
      match Ps.to_packet region with
      | None -> (i, j, Pair_disjoint)
      | Some packet ->
          if Config.Action.equal ri.Config.Acl.action rj.Config.Acl.action
          then (i, j, Pair_overlap)
          else
            ( i,
              j,
              Pair_conflict
                {
                  packet;
                  action_a = ri.Config.Acl.action;
                  action_b = rj.Config.Acl.action;
                  rule_a = Some ri.Config.Acl.seq;
                  rule_b = Some rj.Config.Acl.seq;
                } )
    in
    let all_pairs =
      List.concat
        (List.init ncand (fun i ->
             List.init (ncand - i - 1) (fun d -> (i, i + d + 1))))
    in
    let bounds, pairs =
      match pool with
      | Some pool when Parallel.Pool.domains pool > 1 && ncand > 1 ->
          (* Execute the partition and compile every candidate's match
             once into a frozen base shared by all workers. One task
             per candidate sweep (coarse), pairs a few at a time (each
             is just a conjunction plus a witness extraction). *)
          let base = Bdd.Manager.create () in
          let cells =
            Bdd.with_manager base (fun () ->
                Obs.Counter.incr Metrics.adjacent_contexts;
                let cells = Array.of_list (Ps.exec target) in
                Array.iter (fun r -> ignore (Ps.of_rule r)) candidates;
                cells)
          in
          Bdd.Manager.freeze base;
          let bounds =
            Parallel.Pool.map ~bdd_base:base pool
              ~f:(fun k -> (k, cell_boundaries cells candidates.(k) (0, n)))
              (List.init ncand Fun.id)
          in
          let pairs =
            Parallel.Pool.map ~grain:4 ~bdd_base:base pool ~f:classify_pair
              all_pairs
          in
          (bounds, pairs)
      | _ ->
          (bounds_task (List.init ncand Fun.id), List.map classify_pair all_pairs)
    in
    Obs.Counter.incr
      ~by:(max 0 ((ncand * max 1 n) - 1))
      Metrics.adjacent_prefix_reuse;
    let per_candidate = Array.make ncand [] in
    List.iter (fun (k, bs) -> per_candidate.(k) <- bs) bounds;
    let overlaps =
      List.filter_map
        (function
          | i, j, (Pair_overlap | Pair_conflict _) -> Some (i, j)
          | _, _, Pair_disjoint -> None)
        pairs
    in
    let conflicts =
      List.filter_map
        (function i, j, Pair_conflict d -> Some (i, j, d) | _ -> None)
        pairs
    in
    Obs.Counter.incr ~by:(List.length conflicts) Metrics.batch_conflict_pairs;
    Obs.Histogram.observe_ns Metrics.boundary_ns ((Obs.now () -. t0) *. 1e9);
    { per_candidate; overlaps; conflicts }
  end

let pp_difference fmt d =
  Format.fprintf fmt
    "@[<v>Input packet: %a@ OPTION A: %a (rule %s)@ OPTION B: %a (rule %s)@]"
    Config.Packet.pp d.packet Config.Action.pp d.action_a
    (match d.rule_a with Some s -> string_of_int s | None -> "implicit deny")
    Config.Action.pp d.action_b
    (match d.rule_b with Some s -> string_of_int s | None -> "implicit deny")
