test/str_replace.ml: Printf String
