lib/config/acl.ml: Action Format Int Ipv4 List Netaddr Option Packet Prefix Printf
