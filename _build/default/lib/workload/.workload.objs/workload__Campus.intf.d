lib/workload/campus.mli: Config
