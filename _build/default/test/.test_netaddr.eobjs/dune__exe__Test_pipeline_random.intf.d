test/test_pipeline_random.mli:
