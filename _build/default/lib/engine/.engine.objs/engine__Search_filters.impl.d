lib/engine/search_filters.ml: Bdd Config List Symbdd Symbolic
