lib/engine/compare_acls.mli: Config Format
