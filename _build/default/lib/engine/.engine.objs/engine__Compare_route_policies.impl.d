lib/engine/compare_route_policies.ml: Array Bdd Bgp Config Format List Symbdd Symbolic
