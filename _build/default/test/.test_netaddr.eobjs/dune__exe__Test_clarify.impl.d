test/test_clarify.ml: Acl Action Alcotest Bgp Clarify Config Database Engine List Llm Netaddr Option Packet Parser QCheck QCheck_alcotest Route_map Semantics
