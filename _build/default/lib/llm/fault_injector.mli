(** Deterministic fault injection for the simulated LLM.

    Each fault models one error class observed in LLM-generated router
    configuration and transforms the synthesized config {e text} exactly
    where a real model's error would appear. *)

type fault =
  | Mask_off_by_one (* "le 23" becomes "le 24" *)
  | Flip_action (* permit <-> deny on the stanza line *)
  | Hallucinate_name (* reference an undefined list *)
  | Drop_set_clause (* lose a "set ..." line *)
  | Wrong_set_value (* numeric set argument off by one *)
  | Wrong_community (* community value off by one *)
  | Syntax_error (* mangle a keyword *)

val all_faults : fault list
val fault_to_string : fault -> string

val apply : fault -> string -> string option
(** Apply a fault to the config text; [None] when the fault has nothing
    to corrupt in this snippet. *)

val schedule : seed:int -> faulty_attempts:int -> fault list
(** A deterministic schedule: attempt [i] of a synthesis loop consumes
    entry [i]; an empty tail means clean output, so every schedule
    converges. *)
