lib/core/prefix_list_disambiguator.ml: Array Config Format Fun List Netaddr
