(** Permit/deny actions shared by every Cisco matching construct. *)

type t = Permit | Deny

let to_string = function Permit -> "permit" | Deny -> "deny"

let of_string = function
  | "permit" -> Some Permit
  | "deny" -> Some Deny
  | _ -> None

let flip = function Permit -> Deny | Deny -> Permit
let equal = ( = )
let compare = Stdlib.compare
let pp fmt a = Format.pp_print_string fmt (to_string a)
