lib/overlap/route_map_overlap.ml: Bdd Config List Symbdd Symbolic
