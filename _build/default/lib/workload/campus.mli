(** The "campus network" corpus profile, calibrated to Section 3.2 of
    the paper: 11,088 ACLs (37.7% with conflicting overlaps, 27% of
    those above 20 conflicts; 18.6% with non-trivial conflicts, 16.3%
    of those above 20) and 169 route-maps (two with overlapping
    stanzas, one of them with three pairs of which two conflict).

    [scale] shrinks every group proportionally (minimum one per
    non-empty group) so quick runs stay fast while preserving the
    percentages to within rounding. *)

val default_seed : int

type t = {
  acls : Config.Acl.t list;
  route_map_db : Config.Database.t;
  route_maps : Config.Route_map.t list;
}

val acls : ?seed:int -> ?scale:float -> unit -> Config.Acl.t list

val route_maps :
  ?seed:int -> ?scale:float -> unit -> Config.Database.t * Config.Route_map.t list

val generate : ?seed:int -> ?scale:float -> unit -> t
