(* The verify-and-repair loop in action: the simulated LLM is scheduled
   to make three characteristic mistakes (an off-by-one prefix mask, a
   hallucinated list name, a flipped action) before answering correctly.
   The pipeline catches each one with a symbolic counterexample and
   feeds it back, exactly as the paper's Figure 1 loop does with GPT-4.

   Run with: dune exec examples/faulty_llm.exe *)

let existing_config =
  {|ip as-path access-list D0 permit _32$
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT permit 20
 match local-preference 300|}

let intent =
  "Write a route-map stanza that permits routes containing the prefix \
   100.0.0.0/16 with mask length less than or equal to 23 and tagged with \
   the community 300:3. Their MED value should be set to 55."

let () =
  let db =
    match Config.Parser.parse existing_config with
    | Ok db -> db
    | Error m -> failwith m
  in
  let llm =
    Llm.Mock_llm.create
      ~faults:
        [
          Llm.Fault_injector.Mask_off_by_one;
          Llm.Fault_injector.Hallucinate_name;
          Llm.Fault_injector.Flip_action;
        ]
      ()
  in
  Format.printf "User intent:@.  %s@.@." intent;
  match
    Clarify.Pipeline.run_route_map_update ~llm
      ~oracle:(fun _ -> Clarify.Disambiguator.Prefer_new)
      ~db ~target:"ISP_OUT" ~prompt:intent ()
  with
  | Error e -> failwith (Clarify.Pipeline.error_to_string e)
  | Ok report ->
      Format.printf "The LLM needed %d attempts. Verifier feedback:@."
        report.Clarify.Pipeline.synthesis_attempts;
      List.iter
        (fun line -> Format.printf "  %s@." line)
        report.Clarify.Pipeline.verification_history;
      Format.printf "@.Faults injected: %s@.@."
        (String.concat ", "
           (List.rev_map Llm.Fault_injector.fault_to_string
              (Llm.Mock_llm.stats llm).Llm.Mock_llm.faults_injected));
      Format.printf "Final (verified, disambiguated) configuration:@.%s@."
        (Config.Parser.to_string report.Clarify.Pipeline.db)
