lib/evaluation/a2_llm_disambiguator.ml: Clarify Config E1_running_example Engine Format List Llm Netaddr Option Printf
