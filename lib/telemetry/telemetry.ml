(* The flight recorder: a process-global JSONL event log of every
   pipeline interaction, plus the machine-readable bench snapshot
   schema and its regression diff.

   Like lib/obs this is a leaf library (json + obs only): emitters
   convert domain values to strings/JSON themselves, so every layer of
   the system can record without dependency cycles. *)

(* ------------------------------------------------------------------ *)
(* Events                                                             *)
(* ------------------------------------------------------------------ *)

module Event = struct
  type t = {
    seq : int;
    kind : string;
    span : string; (* active Obs span path at emission; informational *)
    ts_ns : float; (* offset from recorder start; informational *)
    ctx : (string * string) list; (* ambient labels, e.g. router=R1 *)
    fields : (string * Json.t) list;
  }

  let to_json e =
    Json.Obj
      ([
         ("seq", Json.Int e.seq);
         ("kind", Json.String e.kind);
         ("span", Json.String e.span);
         ("ts_ns", Json.Float e.ts_ns);
       ]
      @ (if e.ctx = [] then []
         else
           [
             ( "ctx",
               Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.ctx) );
           ])
      @ [ ("data", Json.Obj e.fields) ])

  let of_json j =
    let str name = Option.bind (Json.member name j) Json.to_str in
    let ts_ns =
      match Json.member "ts_ns" j with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> 0.
    in
    let ctx =
      match Json.member "ctx" j with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
            kvs
      | _ -> []
    in
    match
      ( Option.bind (Json.member "seq" j) Json.to_int,
        str "kind",
        str "span",
        Json.member "data" j )
    with
    | Some seq, Some kind, Some span, Some (Json.Obj fields) ->
        Ok { seq; kind; span; ts_ns; ctx; fields }
    | Some seq, Some kind, Some span, None ->
        Ok { seq; kind; span; ts_ns; ctx; fields = [] }
    | _ -> Error "event: expected {seq, kind, span, data}"

  (* Fields that legitimately differ between a recording and its
     replay: the replayed mock LLM feeds responses from the log, so it
     cannot know which fault (if any) produced them. Token estimates
     are kept out too so logs recorded before cost accounting existed
     still replay cleanly. *)
  let replay_ignored_fields = [ "fault"; "prompt_tokens"; "completion_tokens" ]

  (* Replay equivalence: same kind and same data, ignoring the fields
     above and the (informational) span path and sequence number. *)
  let matches a b =
    let keep (name, _) = not (List.mem name replay_ignored_fields) in
    a.kind = b.kind
    && Json.equal
         (Json.Obj (List.filter keep a.fields))
         (Json.Obj (List.filter keep b.fields))

  let field name e = List.assoc_opt name e.fields
  let str_field name e = Option.bind (field name e) Json.to_str
  let int_field name e = Option.bind (field name e) Json.to_int
end

(* ------------------------------------------------------------------ *)
(* The recorder                                                       *)
(* ------------------------------------------------------------------ *)

type recorder = { write : Event.t -> unit; t0 : float; mutable seq : int }

(* Process-wide recording volume, visible as built-in gauge collectors
   (telemetry.log.events / telemetry.log.bytes) so log growth shows up
   in `clarify top` and /metrics during long fleet runs. Events counts
   every recorded event (memory recorders included); bytes counts what
   channel recorders actually wrote, across all domains. *)
let recorded_events = Atomic.make 0
let recorded_bytes = Atomic.make 0

let () =
  ignore
    (Obs.Gauge.collector "telemetry.log.events"
       ~help:"events recorded by telemetry recorders since process start"
       (fun () -> float_of_int (Atomic.get recorded_events)));
  ignore
    (Obs.Gauge.collector "telemetry.log.bytes"
       ~help:"bytes written to telemetry channel recorders since process start"
       (fun () -> float_of_int (Atomic.get recorded_bytes)))

(* The installed recorder and the ambient context are domain-local:
   each worker domain records to its own log (or not at all) without
   clobbering the recorder of the main domain or of sibling workers —
   e.g. the parallel E4 evaluation writes one per-router log from each
   worker concurrently. *)
let current_key : recorder option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key
let recording () = Option.is_some !(current ())
let stop () = current () := None

(* Ambient context labels, stamped onto every event emitted inside a
   [with_context] scope. A dynamically scoped stack rather than an
   argument so call sites deep in the pipeline (the LLM, the
   disambiguators) need no plumbing to learn which router or experiment
   they are running for. *)
let context_key : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let context () = Domain.DLS.get context_key

let with_context kvs f =
  let context = context () in
  let saved = !context in
  context := saved @ kvs;
  Fun.protect ~finally:(fun () -> context := saved) f

let emit ~kind fields =
  match !(current ()) with
  | None -> ()
  | Some r ->
      let e =
        {
          Event.seq = r.seq;
          kind;
          span = Obs.current_path ();
          ts_ns = (Obs.now () -. r.t0) *. 1e9;
          ctx = !(context ());
          fields = fields ();
        }
      in
      r.seq <- r.seq + 1;
      Atomic.incr recorded_events;
      r.write e

let channel_recorder oc =
  {
    seq = 0;
    t0 = Obs.now ();
    write =
      (fun e ->
        let line = Json.to_string ~indent:0 (Event.to_json e) in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        ignore (Atomic.fetch_and_add recorded_bytes (String.length line + 1)));
  }

let record_to_channel oc = current () := Some (channel_recorder oc)

let with_channel_recorder oc f =
  let current = current () in
  let saved = !current in
  current := Some (channel_recorder oc);
  Fun.protect ~finally:(fun () -> current := saved) f

let record_to_memory () =
  let acc = ref [] in
  current ()
  := Some { seq = 0; t0 = Obs.now (); write = (fun e -> acc := e :: !acc) };
  fun () -> List.rev !acc

let with_memory_recorder f =
  let current = current () in
  let saved = !current in
  let events = record_to_memory () in
  let restore () = current := saved in
  match f () with
  | v ->
      restore ();
      (v, events ())
  | exception e ->
      restore ();
      raise e

(* An Obs sink that mirrors completed spans into the event log as
   kind="span" events, so a recorded session carries its own timing
   tree and [trace export] can rebuild a flame graph from the log
   alone. Replay filters these out: span timings are wall-clock and
   never reproduce exactly. *)
let span_sink () =
  {
    Obs.on_span =
      (fun s ->
        emit ~kind:"span" (fun () ->
            [
              ("path", Json.String s.Obs.Span.path);
              ("depth", Json.Int s.Obs.Span.depth);
              ("start_ns", Json.Float s.Obs.Span.start_ns);
              ("duration_ns", Json.Float s.Obs.Span.duration_ns);
              ("span_seq", Json.Int s.Obs.Span.seq);
            ]));
  }

let parse_events src =
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else
          let err m = Error (Printf.sprintf "line %d: %s" lineno m) in
          (match Json.parse line with
          | Error m -> err m
          | Ok j -> (
              match Event.of_json j with
              | Error m -> err m
              | Ok e -> go (lineno + 1) (e :: acc) rest))
  in
  go 1 [] (String.split_on_char '\n' src)

let load_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      parse_events src

(* ------------------------------------------------------------------ *)
(* Bench snapshots and the regression gate                            *)
(* ------------------------------------------------------------------ *)

module Bench = struct
  let schema = "clarify-bench/1"

  type experiment = { snapshot : Obs.Snapshot.t; events : int }

  type t = {
    domains : int; (* parallelism the snapshot was taken at *)
    experiments : (string * experiment) list;
    benchmarks : (string * float) list; (* name -> ns/run *)
  }

  let to_json t =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("domains", Json.Int t.domains);
        ( "experiments",
          Json.Obj
            (List.map
               (fun (name, e) ->
                 ( name,
                   Json.Obj
                     [
                       ("events", Json.Int e.events);
                       ("metrics", Obs.Snapshot.to_json e.snapshot);
                     ] ))
               t.experiments) );
        ( "benchmarks",
          Json.Obj
            (List.map (fun (name, ns) -> (name, Json.Float ns)) t.benchmarks)
        );
      ]

  let of_json j =
    let ( let* ) r f = Result.bind r f in
    let* () =
      match Option.bind (Json.member "schema" j) Json.to_str with
      | Some s when s = schema -> Ok ()
      | Some s -> Error (Printf.sprintf "unsupported schema %S" s)
      | None -> Error "missing \"schema\""
    in
    let obj name =
      match Json.member name j with
      | Some (Json.Obj fields) -> Ok fields
      | _ -> Error (Printf.sprintf "missing object %S" name)
    in
    let* experiment_fields = obj "experiments" in
    let* experiments =
      List.fold_left
        (fun acc (name, ej) ->
          let* acc = acc in
          let events =
            Option.value ~default:0
              (Option.bind (Json.member "events" ej) Json.to_int)
          in
          match Json.member "metrics" ej with
          | None -> Error (Printf.sprintf "experiment %S: missing metrics" name)
          | Some mj ->
              let* snapshot = Obs.Snapshot.of_json mj in
              Ok ((name, { snapshot; events }) :: acc))
        (Ok []) experiment_fields
      |> Result.map List.rev
    in
    let* bench_fields = obj "benchmarks" in
    let* benchmarks =
      List.fold_left
        (fun acc (name, v) ->
          let* acc = acc in
          match v with
          | Json.Float f -> Ok ((name, f) :: acc)
          | Json.Int i -> Ok ((name, float_of_int i) :: acc)
          | _ -> Error (Printf.sprintf "benchmark %S: not a number" name))
        (Ok []) bench_fields
      |> Result.map List.rev
    in
    (* Absent in pre-parallelism snapshots, which were always serial. *)
    let domains =
      Option.value ~default:1 (Option.bind (Json.member "domains" j) Json.to_int)
    in
    Ok { domains; experiments; benchmarks }

  let of_string s = Result.bind (Json.parse s) of_json

  let load_file path =
    match open_in path with
    | exception Sys_error m -> Error m
    | ic ->
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        of_string src

  (* The diff is computed over a flat metric namespace so that adding a
     new metric class never changes the comparison logic:
       exp.<experiment>.counter.<name>
       exp.<experiment>.gauge.<name>      (informational, never regresses)
       exp.<experiment>.hist.<span path>.mean_ns
       bench.<name>.ns_per_run *)
  let flatten t =
    List.concat_map
      (fun (ename, e) ->
        List.map
          (fun (n, v) ->
            (Printf.sprintf "exp.%s.counter.%s" ename n, float_of_int v))
          e.snapshot.Obs.Snapshot.counters
        @ List.map
            (fun (n, v) -> (Printf.sprintf "exp.%s.gauge.%s" ename n, v))
            e.snapshot.Obs.Snapshot.gauges
        @ List.map
            (fun (n, h) ->
              ( Printf.sprintf "exp.%s.hist.%s.mean_ns" ename n,
                Obs.Snapshot.mean_ns h ))
            e.snapshot.Obs.Snapshot.histograms)
      t.experiments
    @ List.map
        (fun (n, ns) -> (Printf.sprintf "bench.%s.ns_per_run" n, ns))
        t.benchmarks

  (* Gauges are point-in-time ambient state (GC words, BDD manager
     sizes, pool occupancy), not reproducible work counts: they ride
     along in the flat namespace for visibility but never regress a
     diff. *)
  let informational metric =
    let sub = ".gauge." in
    let n = String.length metric and m = String.length sub in
    let rec at i = i + m <= n && (String.sub metric i m = sub || at (i + 1)) in
    at 0

  type delta = {
    metric : string;
    old_value : float option; (* None: metric only in the new snapshot *)
    new_value : float option; (* None: metric only in the old snapshot *)
    change : float; (* (new - old) / old; 0 when either side is missing *)
    regressed : bool;
  }

  let default_threshold = 0.20

  let diff ?(threshold = default_threshold) old_t new_t =
    let old_m = flatten old_t and new_m = flatten new_t in
    let change o n =
      if o = n then 0.
      else if o = 0. then infinity
      else (n -. o) /. o
    in
    let both_and_removed =
      List.map
        (fun (name, o) ->
          match List.assoc_opt name new_m with
          | Some n ->
              let c = change o n in
              {
                metric = name;
                old_value = Some o;
                new_value = Some n;
                change = c;
                regressed = c > threshold && not (informational name);
              }
          | None ->
              {
                metric = name;
                old_value = Some o;
                new_value = None;
                change = 0.;
                regressed = false;
              })
        old_m
    in
    let added =
      List.filter_map
        (fun (name, n) ->
          if List.mem_assoc name old_m then None
          else
            Some
              {
                metric = name;
                old_value = None;
                new_value = Some n;
                change = 0.;
                regressed = false;
              })
        new_m
    in
    both_and_removed @ added

  let regressed deltas = List.exists (fun d -> d.regressed) deltas

  let pp_value fmt = function
    | None -> Format.fprintf fmt "%12s" "-"
    | Some v ->
        if Float.is_integer v && Float.abs v < 1e9 then
          Format.fprintf fmt "%12.0f" v
        else Format.fprintf fmt "%12.1f" v

  let pp_delta fmt d =
    let note =
      match (d.old_value, d.new_value) with
      | Some _, None -> "  (removed)"
      | None, Some _ -> "  (added)"
      | _ -> if d.regressed then "  REGRESSED" else ""
    in
    Format.fprintf fmt "%-64s %a -> %a  %+7.1f%%%s" d.metric pp_value
      d.old_value pp_value d.new_value (100. *. d.change) note

  let pp_diff ?(all = false) fmt deltas =
    let count p = List.length (List.filter p deltas) in
    let regressed_n = count (fun d -> d.regressed) in
    let improved_n = count (fun d -> (not d.regressed) && d.change < 0.) in
    let changed_n =
      count (fun d ->
          d.change <> 0. || d.old_value = None || d.new_value = None)
    in
    Format.fprintf fmt
      "%d regressed / %d improved / %d unchanged (%d metrics compared)@."
      regressed_n improved_n
      (List.length deltas - changed_n)
      (List.length deltas);
    let shown =
      if all then deltas
      else
        List.filter
          (fun d ->
            d.change <> 0. || d.old_value = None || d.new_value = None)
          deltas
    in
    List.iter (fun d -> Format.fprintf fmt "%a@." pp_delta d) shown;
    if regressed_n > 0 then
      Format.fprintf fmt "%d metric(s) regressed@." regressed_n
end
