(* End-to-end coverage of every [Llm.Fault_injector] fault class
   through the full pipeline: with a single attempt each class must
   surface as [Verification_exhausted] carrying the verdict that
   characterises it, and with the default attempt budget the verifier's
   counterexample loop must repair it in exactly one extra round, with
   the observability counters agreeing. *)

module P = Clarify.Pipeline
module D = Clarify.Disambiguator
module F = Llm.Fault_injector

let check_int = Alcotest.(check int)

let parse_ok src =
  match Config.Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

let run ?max_attempts ~faults () =
  let llm = Llm.Mock_llm.create ~faults () in
  P.run_route_map_update ?max_attempts ~llm ~oracle:D.always_new
    ~db:(parse_ok Evaluation.E1_running_example.isp_out_config)
    ~target:"ISP_OUT" ~prompt:Evaluation.E1_running_example.prompt ()

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* The verdict each fault class must provoke on the E1 scenario. The
   substrings come from [Search_route_policies.pp_verdict] and the
   pipeline's own verdict lines. *)
let expected_verdict = function
  | F.Mask_off_by_one -> "outside the specification"
  | F.Flip_action -> "wrong action"
  | F.Hallucinate_name -> "undefined list references"
  | F.Drop_set_clause -> "wrong set clauses"
  | F.Wrong_set_value -> "wrong set clauses"
  | F.Wrong_community -> "outside the specification"
  | F.Syntax_error -> "syntax error"

let test_fault_detected fault () =
  match run ~max_attempts:1 ~faults:[ fault ] () with
  | Ok _ ->
      Alcotest.failf "fault %s slipped through verification"
        (F.fault_to_string fault)
  | Error (P.Verification_exhausted history) -> (
      match history with
      | [ verdict ] ->
          if not (contains ~needle:(expected_verdict fault) verdict) then
            Alcotest.failf "fault %s produced verdict %S, expected one about %S"
              (F.fault_to_string fault) verdict (expected_verdict fault)
      | _ ->
          Alcotest.failf "expected exactly one verdict, got %d"
            (List.length history))
  | Error e ->
      Alcotest.failf "fault %s produced unexpected error: %s"
        (F.fault_to_string fault) (P.error_to_string e)

let counter_value name =
  match Obs.Counter.find name with
  | Some c -> Obs.Counter.value c
  | None -> Alcotest.failf "counter %s is not registered" name

(* With the default budget the counterexample loop repairs the fault:
   one faulty attempt, one clean retry — visible both in the report and
   in the obs counters. *)
let test_fault_repaired fault () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  match run ~faults:[ fault ] () with
  | Error e ->
      Alcotest.failf "fault %s not repaired: %s" (F.fault_to_string fault)
        (P.error_to_string e)
  | Ok report ->
      check_int "two synthesis attempts" 2 report.P.synthesis_attempts;
      check_int "one feedback line" 1
        (List.length report.P.verification_history);
      check_int "attempts counter" 2
        (counter_value "pipeline.synthesis_attempts");
      check_int "one counterexample loop" 1
        (counter_value "pipeline.counterexample_loops");
      check_int "fault injected once" 1 (counter_value "llm.faults.injected");
      check_int "per-class counter" 1
        (counter_value
           (Obs.Labels.full_name "llm.faults.injected"
              [ ("class", F.fault_to_string fault) ]));
      if
        not
          (contains
             ~needle:(expected_verdict fault)
             (String.concat "\n" report.P.verification_history))
      then
        Alcotest.failf "feedback for %s does not mention %S"
          (F.fault_to_string fault) (expected_verdict fault)

(* A clean run consumes no faults and loops zero times. *)
let test_clean_run () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  match run ~faults:[] () with
  | Error e -> Alcotest.failf "clean run failed: %s" (P.error_to_string e)
  | Ok report ->
      check_int "one attempt" 1 report.P.synthesis_attempts;
      check_int "no faults" 0 (counter_value "llm.faults.injected");
      check_int "no loops" 0 (counter_value "pipeline.counterexample_loops")

(* Two scheduled faults: both detected, both repaired on the third try. *)
let test_two_faults () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  match run ~faults:[ F.Flip_action; F.Wrong_set_value ] () with
  | Error e -> Alcotest.failf "double fault not repaired: %s" (P.error_to_string e)
  | Ok report ->
      check_int "three attempts" 3 report.P.synthesis_attempts;
      check_int "two loops" 2 (counter_value "pipeline.counterexample_loops");
      check_int "two injections" 2 (counter_value "llm.faults.injected")

let () =
  Alcotest.run "fault-injection"
    [
      ( "detected (max_attempts = 1)",
        List.map
          (fun fault ->
            Alcotest.test_case (F.fault_to_string fault) `Quick
              (test_fault_detected fault))
          F.all_faults );
      ( "repaired by the feedback loop",
        List.map
          (fun fault ->
            Alcotest.test_case (F.fault_to_string fault) `Quick
              (test_fault_repaired fault))
          F.all_faults );
      ( "schedules",
        [
          Alcotest.test_case "clean run" `Quick test_clean_run;
          Alcotest.test_case "two faults" `Quick test_two_faults;
        ] );
    ]
