test/test_bgp.ml: Alcotest Bgp Format List Netaddr QCheck QCheck_alcotest String
