lib/llm/intent.mli: Bgp Config Engine Format Netaddr
