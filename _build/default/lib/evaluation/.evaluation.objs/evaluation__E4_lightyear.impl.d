lib/evaluation/e4_lightyear.ml: Clarify Config Format List Llm Netaddr Netsim Option Printf String
