lib/engine/compare_route_policies.mli: Bgp Config Format
