(** Cisco-style AS-path regular expressions, interpreted at the level of
    AS-number tokens.

    A BGP AS path is a sequence of AS numbers. Cisco matches its regex
    against the textual rendering of the path; we instead interpret the
    common surface syntax directly over ASN tokens, which avoids the
    substring pitfalls of character-level matching (e.g. [32] matching
    inside [132]) while agreeing with the idiomatic uses:

    - [^] / [$] anchor the start / end of the path; an unanchored
      pattern is padded with [.*] on the corresponding side.
    - [_] is a token boundary and contributes no token of its own.
    - A decimal literal matches exactly that ASN as a whole token.
    - [.] matches any single ASN.
    - [[n-m]] matches an ASN in the inclusive range; multi-digit bounds
      are accepted ([[100-200]]). The idiom [[0-9]+] (a class of digits
      under [+]) is recognized as "any single ASN".
    - [( )], [|], [*], [+], [?] have their usual meanings over tokens.

    Examples: [_32$] — paths originated by AS 32; [^32_] — paths whose
    first hop is AS 32; [^$] — the empty path; [_32_] — paths containing
    AS 32; [.*] — everything. *)

module R = Regex.Make (Alphabet.Asn)

exception Parse_error of string

let max_asn = (1 lsl 32) - 1

type token =
  | Tcaret
  | Tdollar
  | Tunderscore
  | Tdot
  | Tstar
  | Tplus
  | Topt
  | Tbar
  | Tlparen
  | Trparen
  | Tclass of Netaddr.Intset.t * bool (* predicate, was-a-digit-class *)
  | Tasn of int

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    (match s.[!i] with
    | '^' -> push Tcaret; incr i
    | '$' -> push Tdollar; incr i
    | '_' -> push Tunderscore; incr i
    | '.' -> push Tdot; incr i
    | '*' -> push Tstar; incr i
    | '+' -> push Tplus; incr i
    | '?' -> push Topt; incr i
    | '|' -> push Tbar; incr i
    | '(' -> push Tlparen; incr i
    | ')' -> push Trparen; incr i
    | '[' ->
        let j = ref (!i + 1) in
        while !j < n && s.[!j] <> ']' do incr j done;
        if !j >= n then fail "unterminated character class in %S" s;
        let body = String.sub s (!i + 1) (!j - !i - 1) in
        let digit_class = body = "0-9" in
        let parse_num str =
          match int_of_string_opt str with
          | Some v when v >= 0 && v <= max_asn -> v
          | _ -> fail "bad number %S in class" str
        in
        let set =
          String.split_on_char ',' body
          |> List.fold_left
               (fun acc item ->
                 match String.index_opt item '-' with
                 | Some k ->
                     let lo = parse_num (String.sub item 0 k) in
                     let hi =
                       parse_num
                         (String.sub item (k + 1) (String.length item - k - 1))
                     in
                     if lo > hi then fail "empty range in class %S" body;
                     Netaddr.Intset.union acc (Netaddr.Intset.range lo hi)
                 | None ->
                     Netaddr.Intset.union acc
                       (Netaddr.Intset.singleton (parse_num item)))
               Netaddr.Intset.empty
        in
        push (Tclass (set, digit_class));
        i := !j + 1
    | '0' .. '9' ->
        let j = ref !i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
        let lit = String.sub s !i (!j - !i) in
        (match int_of_string_opt lit with
        | Some v when v <= max_asn -> push (Tasn v)
        | _ -> fail "AS number %S out of range" lit);
        i := !j
    | ' ' -> incr i
    | c -> fail "unexpected character %C in AS-path regex %S" c s);
  done;
  List.rev !toks

(* Recursive-descent grammar:
   body   := term ('|' term)*
   term   := factor*
   factor := atom ('*'|'+'|'?')*
   atom   := ASN | '.' | class | '_' | '(' body ')'              *)
let parse_tokens toks =
  let toks = ref toks in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let rec body () =
    let t = term () in
    match peek () with
    | Some Tbar ->
        advance ();
        R.alt t (body ())
    | _ -> t
  and term () =
    match peek () with
    | None | Some (Tbar | Trparen | Tdollar) -> R.eps
    | Some _ -> (
        match factor () with
        | None -> R.eps
        | Some f -> R.cat f (term ()))
  and factor () =
    let base =
      match peek () with
      | Some (Tasn v) ->
          advance ();
          Some (R.pred (Netaddr.Intset.singleton v))
      | Some Tdot ->
          advance ();
          Some R.any
      | Some (Tclass (set, digit_class)) ->
          advance ();
          (* "[0-9]+" is the Cisco idiom for "any ASN". *)
          if digit_class && peek () = Some Tplus then begin
            advance ();
            Some R.any
          end
          else Some (R.pred set)
      | Some Tunderscore ->
          advance ();
          Some R.eps
      | Some Tlparen ->
          advance ();
          let r = body () in
          (match peek () with
          | Some Trparen -> advance ()
          | _ -> fail "expected ')'");
          Some r
      | Some (Tcaret | Tdollar) -> fail "misplaced anchor"
      | Some (Tstar | Tplus | Topt) -> fail "dangling postfix operator"
      | Some (Tbar | Trparen) | None -> None
    in
    match base with
    | None -> None
    | Some r ->
        let rec postfix r =
          match peek () with
          | Some Tstar -> advance (); postfix (R.star r)
          | Some Tplus -> advance (); postfix (R.plus r)
          | Some Topt -> advance (); postfix (R.opt r)
          | _ -> r
        in
        Some (postfix r)
  in
  let anchored_start =
    match peek () with
    | Some Tcaret ->
        advance ();
        true
    | _ -> false
  in
  let r = body () in
  let anchored_end =
    match peek () with
    | Some Tdollar ->
        advance ();
        if peek () <> None then fail "trailing tokens after '$'";
        true
    | None -> false
    | Some _ -> fail "unparsed trailing tokens"
  in
  let all = R.star R.any in
  let r = if anchored_start then r else R.cat all r in
  if anchored_end then r else R.cat r all

type t = { source : string; re : R.re }

let compile source = { source; re = parse_tokens (tokenize source) }
let source t = t.source
let regex t = t.re
let matches t path = R.matches t.re path
let pp fmt t = Format.fprintf fmt "%s" t.source

(** Satisfiability of a conjunction of positive and negated path
    constraints; returns a concrete witness path. *)
let sat_witness ~pos ~neg =
  let r =
    R.inter_list
      (List.map regex pos @ List.map (fun t -> R.compl t.re) neg)
  in
  R.shortest_witness r

let intersects a b = Option.is_some (sat_witness ~pos:[ a; b ] ~neg:[])
