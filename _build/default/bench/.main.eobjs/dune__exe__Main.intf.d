bench/main.mli:
