(** Hash-consed reduced ordered binary decision diagrams.

    Variables are non-negative integers ordered by their index: smaller
    indices appear closer to the root. All BDDs built through one
    manager are maximally shared, so structural equality coincides with
    physical equality and is O(1) via {!equal}.

    {b Managers and domains.} All mutable state (the unique table, the
    operation memo tables, the compilation cache, the hooks) lives in a
    {!Manager.t}. The module-level operations act on a {e domain-local}
    default manager — one per [Domain], allocated lazily — so every
    domain owns an isolated, race-free BDD universe and parallel
    workers never contend on the allocation path. Node identity is
    manager-relative: never mix BDDs built by different managers (or by
    the same manager across a {!Manager.reset}) in one operation. *)

type t

(** The mutable BDD universe: unique table, id allocator, memo tables,
    compilation cache and observability hooks. *)
module Manager : sig
  type bdd = t
  type t

  val create : unit -> t

  val current : unit -> t
  (** The calling domain's default manager (created on first use). *)

  val clear_caches : t -> unit
  (** Drop the operation memo tables only; hash-consed nodes and the
      compilation cache are kept. *)

  val reset : t -> unit
  (** Full reset: unique table, id allocator, memo tables and the
      compilation cache. Invalidates {e every} BDD the manager has
      built — only call between independent analyses when none of
      their results is still live. Bounds memory across large corpus
      sweeps, which {!val:clear_caches} alone cannot (it keeps the
      unique table). *)

  type stats = {
    nodes : int; (* live entries in the unique table *)
    next_id : int; (* next fresh node id (2 after a reset) *)
    neg_memo : int;
    and_memo : int;
    xor_memo : int;
    restrict_memo : int;
    cache_entries : int; (* compilation-cache entries *)
    cache_hits : int; (* compilation-cache hits since creation *)
    cache_misses : int;
  }

  val stats : t -> stats
end

val manager : unit -> Manager.t
(** Alias for {!Manager.current}. *)

val with_manager : Manager.t -> (unit -> 'a) -> 'a
(** [with_manager m f] runs [f] with [m] installed as the calling
    domain's default manager, restoring the previous one afterwards
    (also on raise). BDDs built inside [f] belong to [m] and must not
    escape into operations under another manager. *)

val zero : t
(** The constant false. *)

val one : t
(** The constant true. *)

val var : int -> t
(** [var i] is the BDD of the propositional variable [i].
    @raise Invalid_argument if [i < 0]. *)

val nvar : int -> t
(** [nvar i] is the negation of variable [i]. *)

val neg : t -> t
val conj : t -> t -> t
val disj : t -> t -> t
val xor : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t

val conj_list : t list -> t
val disj_list : t list -> t

val exists : int list -> t -> t
(** Existentially quantify the given variables. *)

val restrict : int -> bool -> t -> t
(** [restrict i v t] fixes variable [i] to [v]. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_sat : t -> bool
val implies : t -> t -> bool
(** [implies a b] iff [a] entails [b]. *)

val cached : key:string -> (unit -> t) -> t
(** [cached ~key f] is the symbolic compilation cache of the current
    manager: return the BDD memoized under [key], or run [f], store
    its result and return it. Keys must canonically encode the whole
    source object being compiled (two different objects must never
    render to the same key). Hit/miss totals appear in
    {!Manager.stats} and fire {!set_cache_hook}. *)

val any_sat : t -> (int * bool) list
(** A partial assignment (variable, value) making the BDD true; variables
    absent from the list are don't-cares. @raise Not_found on [zero]. *)

val all_sat : t -> (int * bool) list Seq.t
(** Lazy sequence of all satisfying partial assignments (BDD paths). *)

val sat_count : nvars:int -> t -> float
(** Number of satisfying total assignments over a universe of [nvars]
    variables (as float: counts can exceed 2{^62}). *)

val size : t -> int
(** Number of distinct internal nodes. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val eval : (int -> bool) -> t -> bool
(** Evaluate under a total assignment. *)

val node_count : unit -> int
(** Number of live nodes in the current domain's unique table
    (diagnostic); [Manager.stats] gives the full picture. *)

val set_alloc_hook : (unit -> unit) option -> unit
(** Install (or clear) a callback on the {e current domain's} manager,
    fired once per fresh node allocation. Used by the observability
    layer to count BDD allocations; [None] keeps the allocation path
    hook-free apart from one match. Per-manager, so concurrent domains
    can count allocations without racing on a shared cell. *)

val set_cache_hook : (bool -> unit) option -> unit
(** Install (or clear) a callback on the current domain's manager,
    fired on every {!cached} probe with [true] on a hit and [false] on
    a miss. *)

val get_alloc_hook : unit -> (unit -> unit) option
val get_cache_hook : unit -> (bool -> unit) option
(** The current domain's installed hooks, so a scope that redirects
    them (e.g. a worker pool labelling allocations per domain) can
    restore the previous wiring afterwards. *)

val clear_caches : unit -> unit
(** [Manager.clear_caches] on the current domain's manager: drop
    operation memo tables (unique table is kept). Useful between large
    independent analyses to bound memo growth; use {!Manager.reset}
    to also bound the unique table. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering as nested if-then-else. *)
