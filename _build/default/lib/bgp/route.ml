type origin = Igp | Egp | Incomplete

type t = {
  prefix : Netaddr.Prefix.t;
  as_path : int list;
  communities : Community.t list;
  local_pref : int;
  metric : int;
  next_hop : Netaddr.Ipv4.t;
  origin : origin;
  tag : int;
  weight : int;
}

let normalize_communities cs = List.sort_uniq Community.compare cs

let make ?(as_path = []) ?(communities = []) ?(local_pref = 100) ?(metric = 0)
    ?(next_hop = Netaddr.Ipv4.of_int 1) ?(origin = Igp) ?(tag = 0)
    ?(weight = 0) prefix =
  {
    prefix;
    as_path;
    communities = normalize_communities communities;
    local_pref;
    metric;
    next_hop;
    origin;
    tag;
    weight;
  }

let with_communities r cs = { r with communities = normalize_communities cs }
let add_communities r cs = with_communities r (cs @ r.communities)

let delete_communities r keep_if =
  { r with communities = List.filter (fun c -> not (keep_if c)) r.communities }

let has_community r c = List.exists (Community.equal c) r.communities
let prepend_as_path r asns = { r with as_path = asns @ r.as_path }

let origin_to_string = function
  | Igp -> "igp"
  | Egp -> "egp"
  | Incomplete -> "incomplete"

let compare a b = Stdlib.compare a b
let equal a b = compare a b = 0

let pp fmt r =
  Format.fprintf fmt "@[<v>Network: %a@ AS Path: [%s]@ Communities: [%s]@ \
                      Local Preference: %d@ Metric: %d@ Next Hop IP: %a@ \
                      Origin: %s@ Tag: %d@ Weight: %d@]"
    Netaddr.Prefix.pp r.prefix
    (String.concat ", " (List.map string_of_int r.as_path))
    (String.concat ", "
       (List.map (fun c -> "\"" ^ Community.to_string c ^ "\"") r.communities))
    r.local_pref r.metric Netaddr.Ipv4.pp r.next_hop
    (origin_to_string r.origin) r.tag r.weight
