examples/faulty_llm.mli:
