lib/llm/mock_llm.ml: Classifier Fault_injector Intent Nl_parser String Synthesizer
