(** Expanded community-list regular expressions.

    Cisco matches expanded community lists against the textual rendering
    of a route's communities; we interpret the regex against each
    individual community rendered as ["A:B"] — a route satisfies the
    regex iff at least one of its communities matches. Within a single
    community string:

    - a leading [_] (or [^]) anchors the start, a trailing [_] (or [$])
      anchors the end; an unanchored pattern is padded with [.*]
      (Cisco's substring semantics);
    - an internal [_] matches the [:] separator;
    - digits, [:], [.], [[..]] classes, [()], [|], [*], [+], [?] have
      their usual character-level meanings. *)

module R : module type of Regex.Make (Alphabet.Char_)

exception Parse_error of string

type t

val compile : string -> t
(** @raise Parse_error on malformed input. *)

val source : t -> string
val regex : t -> R.re

val matches : t -> int * int -> bool
(** Does the community (asn, value) match? *)

val matches_string : t -> string -> bool

val parse_community : string -> (int * int) option
(** Parse ["A:B"] with 16-bit bounds checking. *)

val sat_witness : pos:t list -> neg:t list -> (int * int) option
(** A concrete community matching all of [pos] and none of [neg], if one
    can be found. Complete up to the witness-enumeration budget: a
    [None] answer is almost always genuine infeasibility, but an
    adversarial regex whose only witnesses exceed 16-bit bounds could be
    missed. *)

val intersects : t -> t -> bool
val is_empty : t -> bool
val pp : Format.formatter -> t -> unit
