type t = int array

let make a =
  if Array.length a = 0 then invalid_arg "Bvec.make: empty";
  Array.iter (fun v -> if v < 0 then invalid_arg "Bvec.make: negative var") a;
  a

let sequential ~first ~width =
  if width <= 0 || first < 0 then invalid_arg "Bvec.sequential";
  Array.init width (fun i -> first + i)

let width = Array.length
let vars t = Array.to_list t
let bit_of_const t n i = (n lsr (width t - 1 - i)) land 1 = 1

let check_const t n =
  let w = width t in
  if n < 0 || (w < 62 && n lsr w <> 0) then
    invalid_arg (Printf.sprintf "Bvec: constant %d does not fit %d bits" n w)

let eq_const t n =
  check_const t n;
  Bdd.conj_list
    (List.init (width t) (fun i ->
         if bit_of_const t n i then Bdd.var t.(i) else Bdd.nvar t.(i)))

let le_const t n =
  check_const t n;
  (* Build from LSB up: le_i handles bits i..end. *)
  let acc = ref Bdd.one in
  for i = width t - 1 downto 0 do
    acc :=
      if bit_of_const t n i then Bdd.ite (Bdd.var t.(i)) !acc Bdd.one
      else Bdd.conj (Bdd.nvar t.(i)) !acc
  done;
  !acc

let ge_const t n =
  check_const t n;
  let acc = ref Bdd.one in
  for i = width t - 1 downto 0 do
    acc :=
      if bit_of_const t n i then Bdd.conj (Bdd.var t.(i)) !acc
      else Bdd.ite (Bdd.var t.(i)) Bdd.one !acc
  done;
  !acc

let in_range t lo hi =
  if lo > hi then invalid_arg "Bvec.in_range";
  Bdd.conj (ge_const t lo) (le_const t hi)

let prefix_match t ~value ~len =
  check_const t value;
  if len < 0 || len > width t then invalid_arg "Bvec.prefix_match";
  Bdd.conj_list
    (List.init len (fun i ->
         if bit_of_const t value i then Bdd.var t.(i) else Bdd.nvar t.(i)))

let decode t assignment =
  let value = ref 0 in
  let w = width t in
  for i = 0 to w - 1 do
    let b = match List.assoc_opt t.(i) assignment with
      | Some b -> b
      | None -> false
    in
    if b then value := !value lor (1 lsl (w - 1 - i))
  done;
  !value
