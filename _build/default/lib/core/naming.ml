(** Fresh naming of ancillary lists when a synthesized snippet is
    imported into an existing configuration.

    The paper's tool renames the snippet's data structures (COM_LIST,
    PREFIX_100, ...) to fresh names D2, D3, ... on insertion; this
    module implements that renaming and the import itself. *)

let fresh_names db count =
  let taken = Config.Database.all_names db in
  let rec go acc k remaining =
    if remaining = 0 then List.rev acc
    else
      let candidate = Printf.sprintf "D%d" k in
      if List.mem candidate taken then go acc (k + 1) remaining
      else go (candidate :: acc) (k + 1) (remaining - 1)
  in
  go [] 0 count

type imported = {
  db : Config.Database.t; (* target db plus the renamed lists *)
  stanza : Config.Route_map.stanza; (* references rewritten *)
  renaming : (string * string) list;
}

(** Import a synthesized snippet (ancillary lists plus a single-stanza
    route-map) into [db]: every list referenced by the stanza is copied
    under a fresh [D<k>] name and the stanza's references are rewritten. *)
let import_route_map_snippet ~db ~(snippet : Config.Database.t)
    (rm : Config.Route_map.t) =
  match rm.Config.Route_map.stanzas with
  | [ snippet_stanza ] ->
      (* Fresh names are assigned in the order the lists appear in the
         stanza, matching the paper's D2 (community list), D3 (prefix
         list) numbering for its running example. *)
      let refs =
        let in_order =
          List.concat_map
            (function
              | Config.Route_map.Match_prefix_list names ->
                  List.map (fun n -> (`Prefix_list, n)) names
              | Config.Route_map.Match_community names ->
                  List.map (fun n -> (`Community_list, n)) names
              | Config.Route_map.Match_as_path names ->
                  List.map (fun n -> (`As_path_list, n)) names
              | Config.Route_map.Match_local_pref _
              | Config.Route_map.Match_metric _
              | Config.Route_map.Match_tag _ ->
                  [])
            snippet_stanza.Config.Route_map.matches
          @ List.concat_map
              (function
                | Config.Route_map.Set_comm_list_delete name ->
                    [ (`Community_list, name) ]
                | _ -> [])
              snippet_stanza.Config.Route_map.sets
        in
        let seen = Hashtbl.create 4 in
        List.filter
          (fun r ->
            if Hashtbl.mem seen r then false
            else begin
              Hashtbl.add seen r ();
              true
            end)
          in_order
      in
      let fresh = fresh_names db (List.length refs) in
      let renaming = List.map2 (fun (_, old) n -> (old, n)) refs fresh in
      let db' =
        List.fold_left2
          (fun acc (kind, old_name) new_name ->
            match kind with
            | `Prefix_list -> (
                match Config.Database.prefix_list snippet old_name with
                | Some pl ->
                    Config.Database.add_prefix_list acc
                      (Config.Prefix_list.rename pl new_name)
                | None -> acc)
            | `Community_list -> (
                match Config.Database.community_list snippet old_name with
                | Some cl ->
                    Config.Database.add_community_list acc
                      (Config.Community_list.rename cl new_name)
                | None -> acc)
            | `As_path_list -> (
                match Config.Database.as_path_list snippet old_name with
                | Some al ->
                    Config.Database.add_as_path_list acc
                      (Config.As_path_list.rename al new_name)
                | None -> acc))
          db refs fresh
      in
      let rewritten =
        Config.Route_map.rename_references rm renaming
      in
      (match rewritten.Config.Route_map.stanzas with
      | [ stanza' ] -> Ok { db = db'; stanza = stanza'; renaming }
      | _ -> assert false)
  | stanzas ->
      Error
        (Printf.sprintf "snippet must contain exactly one stanza, found %d"
           (List.length stanzas))
