lib/core/naming.ml: Config Hashtbl List Printf
