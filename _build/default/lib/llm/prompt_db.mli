(** System prompts and few-shot examples retrieved per query type — the
    paper's step 2 ("retrieve the corresponding system prompts and
    examples from a database"). *)

type entry = {
  system : string;
  few_shot : (string * string) list; (* (user prompt, assistant answer) *)
}

val route_map_entry : entry
val acl_entry : entry
val retrieve : [ `Acl | `Route_map ] -> entry
