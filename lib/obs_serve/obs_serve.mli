(** Pull-based live metrics: the [/metrics] HTTP endpoint, its scrape
    client, and the [clarify top] dashboard renderer.

    The server thread shares its domain's runtime lock with the main
    thread (systhreads within one domain never run simultaneously), so
    serving a scrape mid-run reads the registry exactly as safely as
    any same-domain snapshot; shards of still-running worker domains
    merge as racy-but-never-torn live reads (see [Obs]). *)

(** A minimal HTTP/1.x server answering [GET /metrics] with the
    Prometheus text rendering of a fresh [Obs.Snapshot.capture], from
    one background thread. Anything else gets a 404. *)
module Server : sig
  type t

  val start :
    ?host:string -> port:int -> unit -> (t, string) result
  (** Bind [host] (an IP literal, default ["127.0.0.1"]) on [port]
      (0 picks a free port; see {!port}) and start serving. [Error]
      carries the bind/listen failure, e.g. an address already in
      use. *)

  val port : t -> int
  (** The bound port — useful with [port:0]. *)

  val metrics_body : unit -> string
  (** The exposition text a scrape would receive right now. *)

  val stop : t -> unit
  (** Stop accepting, wake and join the serving thread, close the
      socket. Idempotent. *)
end

(** A one-shot HTTP GET client and a parser for the Prometheus text
    format — enough to scrape {!Server} (or any exposition endpoint)
    without an HTTP dependency. *)
module Scrape : sig
  type sample = {
    metric : string; (* sample name, e.g. clarify_pipeline_runs_total *)
    labels : (string * string) list;
    value : float;
  }

  type t = {
    types : (string * string) list; (* family name -> TYPE, in order *)
    samples : sample list; (* in exposition order *)
  }

  val parse : string -> (t, string) result
  (** Parse exposition text: [# TYPE] lines into [types], sample lines
      into [samples] ([+Inf]/[-Inf]/[NaN] and trailing timestamps
      handled), other comments skipped. Fails on the first line that is
      neither blank, comment nor sample. *)

  val fetch : ?host:string -> port:int -> string -> (string, string) result
  (** [fetch ~port path] GETs [path] and returns the response body of a
      200, [Error] otherwise. [host] must be an IP literal. *)
end

(** Two scrapes -> a terminal dashboard. *)
module Top : sig
  type hist = {
    count : float;
    sum_ns : float;
    buckets : (float * float) list; (* (upper_bound, cumulative) sorted *)
  }

  type snap = {
    at : float; (* seconds, caller's clock *)
    counters : (string * float) list; (* series name -> running total *)
    gauges : (string * float) list;
    hists : (string * hist) list;
  }

  val of_scrape : at:float -> Scrape.t -> snap
  (** Regroup a parsed scrape by family type: counter and gauge samples
      keyed by [name{labels}], histogram [_bucket]/[_sum]/[_count]
      samples reassembled per series (the [le] label folded into
      bucket bounds). *)

  val quantile : float -> hist -> float
  (** Upper bound of the bucket containing the given quantile of the
      cumulative distribution; the overflow bucket clamps to the last
      finite bound. 0 for an empty histogram. *)

  val utilization : prev:snap -> cur:snap -> (string * float) list
  (** Busy fraction per worker domain over the window, from the
      [clarify_parallel_task_ns{domain=N}] sum deltas: (domain label,
      fraction in [0,1]). *)

  val render :
    ?fleet:bool ->
    ?cost_of_tokens:
      (prompt:float -> completion:float -> float option) ->
    prev:snap ->
    cur:snap ->
    unit ->
    string
  (** The dashboard: counter rates over the window, histogram p50/p99
      and observation rates, per-domain utilization bars, gauges. All
      windowed rates clamp negative deltas to zero, so a counter reset
      between scrapes (process restart, new run) renders as a stalled
      rate rather than a negative one. Plain text (no escape codes);
      one screenful for typical registries.

      [fleet] prepends a fleet pane built from the
      [clarify_fleet_routers_{pending,running,done}] and
      [clarify_fleet_stragglers] gauges and the
      [clarify_fleet_router_ns] histogram an E5 run maintains: a router
      progress bar, completion rate with an ETA, straggler count, wall
      p50/p99, and fleet-wide question/token totals. [cost_of_tokens]
      maps the token totals to an estimated price — passed in as a
      closure because pricing lives in the LLM layer, on which this
      library does not depend. *)
end
