lib/symbolic/route_ctx.ml: Array Bdd Bgp Bvec Config Fun Hashtbl List Netaddr Option Printf Sre Stdlib Symbdd
