(** Concrete first-match semantics of route-maps and ACLs.

    These evaluators define the reference behaviour that the symbolic
    engine must agree with; the agreement is checked by property tests. *)

type route_result =
  | Accept of Bgp.Route.t (* possibly transformed by set clauses *)
  | Reject

(* A match clause referring to an undefined list never matches — the
   Cisco behaviour for standard lists is vendor-dependent; we pick the
   conservative reading and surface undefined references separately via
   {!Database.undefined_references}. *)
let match_clause db (r : Bgp.Route.t) = function
  | Route_map.Match_prefix_list names ->
      List.exists
        (fun n ->
          match Database.prefix_list db n with
          | Some pl -> Prefix_list.permits pl r.prefix
          | None -> false)
        names
  | Route_map.Match_community names ->
      List.exists
        (fun n ->
          match Database.community_list db n with
          | Some cl -> Community_list.matches cl r.communities
          | None -> false)
        names
  | Route_map.Match_as_path names ->
      List.exists
        (fun n ->
          match Database.as_path_list db n with
          | Some al -> As_path_list.matches al r.as_path
          | None -> false)
        names
  | Route_map.Match_local_pref n -> r.local_pref = n
  | Route_map.Match_metric n -> r.metric = n
  | Route_map.Match_tag tags -> List.mem r.tag tags

let stanza_matches db (s : Route_map.stanza) r =
  List.for_all (match_clause db r) s.matches

let apply_set db (r : Bgp.Route.t) = function
  | Route_map.Set_metric n -> { r with metric = n }
  | Route_map.Set_local_pref n -> { r with local_pref = n }
  | Route_map.Set_community { communities; additive } ->
      if additive then Bgp.Route.add_communities r communities
      else Bgp.Route.with_communities r communities
  | Route_map.Set_comm_list_delete name ->
      Bgp.Route.delete_communities r (fun c ->
          match Database.community_list db name with
          | Some cl -> Community_list.matches cl [ c ]
          | None -> false)
  | Route_map.Set_as_path_prepend asns -> Bgp.Route.prepend_as_path r asns
  | Route_map.Set_next_hop ip -> { r with next_hop = ip }
  | Route_map.Set_tag n -> { r with tag = n }
  | Route_map.Set_weight n -> { r with weight = n }
  | Route_map.Set_origin o -> { r with origin = o }

let apply_sets db r sets = List.fold_left (apply_set db) r sets

(** The stanza handling the route (the paper's function [M]), if any. *)
let matching_stanza db (rm : Route_map.t) r =
  List.find_opt (fun s -> stanza_matches db s r) rm.Route_map.stanzas

(** First-match evaluation with Cisco's implicit trailing deny. *)
let eval_route_map db (rm : Route_map.t) r =
  match matching_stanza db rm r with
  | Some s -> (
      match s.action with
      | Action.Permit -> Accept (apply_sets db r s.sets)
      | Action.Deny -> Reject)
  | None -> Reject

(** Evaluate a chain of route-maps applied in order; a route must be
    accepted by each to survive, and transformations accumulate. *)
let eval_chain db rms r =
  List.fold_left
    (fun acc rm ->
      match acc with
      | Reject -> Reject
      | Accept r -> eval_route_map db rm r)
    (Accept r) rms

let eval_acl (acl : Acl.t) p =
  match Acl.eval acl p with
  | Some a -> a
  | None -> Action.Deny (* implicit deny *)

let route_result_equal a b =
  match (a, b) with
  | Reject, Reject -> true
  | Accept r1, Accept r2 -> Bgp.Route.equal r1 r2
  | _ -> false

let pp_route_result fmt = function
  | Reject -> Format.fprintf fmt "ACTION: deny"
  | Accept r -> Format.fprintf fmt "@[<v>ACTION: permit@ %a@]" Bgp.Route.pp r
