(** Predicate alphabets for symbolic regular expressions.

    Predicates must be pure data: the regex engine uses structural
    comparison on them to canonicalize states. *)

module type S = sig
  type sym
  type pred

  val tt : pred
  val ff : pred
  val conj : pred -> pred -> pred
  val neg : pred -> pred
  val is_empty : pred -> bool
  val mem : sym -> pred -> bool

  val witness : pred -> sym option
  (** Some symbol satisfying the predicate; [None] iff unsatisfiable. *)

  val compare : pred -> pred -> int
  val pp_pred : Format.formatter -> pred -> unit
  val pp_sym : Format.formatter -> sym -> unit
end

(** Alphabet of 32-bit AS numbers with interval-set predicates. *)
module Asn : S with type sym = int and type pred = Netaddr.Intset.t = struct
  type sym = int
  type pred = Netaddr.Intset.t

  let max_asn = (1 lsl 32) - 1
  let tt = Netaddr.Intset.full ~max:max_asn
  let ff = Netaddr.Intset.empty
  let conj = Netaddr.Intset.inter
  let neg = Netaddr.Intset.compl ~max:max_asn
  let is_empty = Netaddr.Intset.is_empty
  let mem = Netaddr.Intset.mem
  let witness = Netaddr.Intset.choose
  let compare = Netaddr.Intset.compare
  let pp_pred = Netaddr.Intset.pp
  let pp_sym fmt n = Format.fprintf fmt "%d" n
end

(** Alphabet of bytes with interval-set predicates, for character-level
    regexes (expanded community lists). *)
module Char_ : S with type sym = char and type pred = Netaddr.Intset.t =
struct
  type sym = char
  type pred = Netaddr.Intset.t

  let tt = Netaddr.Intset.full ~max:255
  let ff = Netaddr.Intset.empty
  let conj = Netaddr.Intset.inter
  let neg = Netaddr.Intset.compl ~max:255
  let is_empty = Netaddr.Intset.is_empty
  let mem c p = Netaddr.Intset.mem (Char.code c) p
  let witness p = Option.map Char.chr (Netaddr.Intset.choose p)
  let compare = Netaddr.Intset.compare
  let pp_pred = Netaddr.Intset.pp
  let pp_sym fmt c = Format.fprintf fmt "%C" c
end
