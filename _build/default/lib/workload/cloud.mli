(** The "cloud WAN" corpus profile, calibrated to Section 3.1 of the
    paper: 237 ACLs of which 69 have at least one overlap and 48 have
    more than 20 (including one gateway ACL with over 100 overlapping
    pairs); 800 route-maps of which 140 contain overlaps and 3 have more
    than 20. Fully deterministic per seed. *)

val default_seed : int

type t = {
  acls : Config.Acl.t list;
  route_map_db : Config.Database.t;
  route_maps : Config.Route_map.t list;
}

val acls : ?seed:int -> unit -> Config.Acl.t list
val route_maps : ?seed:int -> unit -> Config.Database.t * Config.Route_map.t list
val generate : ?seed:int -> unit -> t
