open Config
module I = Llm.Intent

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pfx = Netaddr.Prefix.of_string_exn
let comm = Bgp.Community.of_string_exn
let ip = Netaddr.Ipv4.of_string_exn

let paper_prompt =
  "Write a route-map stanza that permits routes containing the prefix \
   100.0.0.0/16 with mask length less than or equal to 23 and tagged with \
   the community 300:3. Their MED value should be set to 55."

(* ------------------------------------------------------------------ *)
(* Classifier                                                         *)
(* ------------------------------------------------------------------ *)

let test_classifier () =
  check "paper prompt is a route-map query" true
    (Llm.Classifier.classify paper_prompt = `Route_map);
  check "acl prompt" true
    (Llm.Classifier.classify
       "Write an access list rule that denies udp traffic from anywhere to \
        host 192.168.1.1 with destination port 53."
    = `Acl);
  check "route-ish" true
    (Llm.Classifier.classify
       "Write a route-map stanza that denies routes originating from AS 65010."
    = `Route_map);
  check "tcp wins" true
    (Llm.Classifier.classify
       "permit tcp packets from 10.0.0.0/8 to any destination port 80"
    = `Acl)

(* ------------------------------------------------------------------ *)
(* NL parsing of the paper's prompt                                   *)
(* ------------------------------------------------------------------ *)

let test_parse_paper_prompt () =
  match Llm.Nl_parser.parse_route_map paper_prompt with
  | Error e -> Alcotest.failf "parse failed: %s" (Llm.Nl_parser.error_message e)
  | Ok i ->
      check "permit" true (i.I.action = Action.Permit);
      (match i.I.prefixes with
      | [ r ] ->
          check "range" true
            (Netaddr.Prefix_range.equal r
               (Netaddr.Prefix_range.make (pfx "100.0.0.0/16") ~ge:None
                  ~le:(Some 23)))
      | _ -> Alcotest.fail "expected one prefix");
      check "community" true (i.I.communities = [ comm "300:3" ]);
      check "metric set" true (i.I.sets = [ Route_map.Set_metric 55 ])

let test_parse_variants () =
  let ok s = Result.is_ok (Llm.Nl_parser.parse_route_map s) in
  check "deny origin" true
    (ok "Write a route-map stanza that denies routes originating from AS 65010.");
  check "blocks synonym" true (ok "Blocks routes passing through AS 100.");
  check "between window" true
    (ok "Allow routes containing the prefix 10.0.0.0/8 with mask length between 24 and 28.");
  check "at most" true
    (ok "Permit routes containing the prefix 10.0.0.0/8 with mask length at most 24.");
  check "multi sets" true
    (ok "Permit routes with local preference 300. Their MED value should be set to 5. Their tag should be set to 9.")

let test_parse_rejects () =
  let fails s = Result.is_error (Llm.Nl_parser.parse_route_map s) in
  check "no verb" true (fails "Routes containing the prefix 10.0.0.0/8.");
  check "garbled set sentence" true
    (fails "Permit routes with local preference 300. Make it fast.")

let test_parse_acl_prompt () =
  match
    Llm.Nl_parser.parse `Acl
      "Write an access list rule that permits tcp traffic from 10.0.0.0/8 to \
       host 1.2.3.4 with destination port 443 and for established \
       connections only."
  with
  | Ok (I.Acl a) ->
      check "permit" true (a.I.acl_action = Action.Permit);
      check "tcp" true (a.I.protocol = Packet.Tcp);
      check "src prefix" true
        (a.I.src = Acl.addr_of_prefix (pfx "10.0.0.0/8"));
      check "dst host" true (a.I.dst = Acl.Host (ip "1.2.3.4"));
      check "dst port" true (a.I.dst_port = Acl.Eq 443);
      check "established" true a.I.established
  | Ok (I.Route_map _) -> Alcotest.fail "classified as route-map"
  | Error e -> Alcotest.failf "parse failed: %s" (Llm.Nl_parser.error_message e)

(* ------------------------------------------------------------------ *)
(* Render/parse round-trip over random intents                        *)
(* ------------------------------------------------------------------ *)

let gen_route_map_intent =
  QCheck.Gen.(
    let gen_range =
      oneofl [ pfx "10.0.0.0/8"; pfx "100.0.0.0/16"; pfx "192.168.0.0/16" ]
      >>= fun p ->
      oneof
        [
          return (Netaddr.Prefix_range.exact p);
          (let len = p.Netaddr.Prefix.len in
           int_range len 32 >>= fun hi ->
           return (Netaddr.Prefix_range.make p ~ge:None ~le:(Some hi)));
          (let len = p.Netaddr.Prefix.len in
           int_range len 32 >>= fun lo ->
           return (Netaddr.Prefix_range.make p ~ge:(Some lo) ~le:None));
        ]
    in
    oneofl [ Action.Permit; Action.Deny ] >>= fun action ->
    list_size (int_range 0 2) gen_range >>= fun prefixes ->
    list_size (int_range 0 2) (oneofl [ comm "300:3"; comm "65000:1"; comm "1:2" ])
    >>= fun communities ->
    let communities = List.sort_uniq Bgp.Community.compare communities in
    oneofl [ None; Some 32; Some 65010 ] >>= fun as_path_origin ->
    (match as_path_origin with
    | Some _ -> return None
    | None -> oneofl [ None; Some 100 ])
    >>= fun as_path_contains ->
    oneofl [ None; Some 300 ] >>= fun local_pref ->
    oneofl [ None; Some 20 ] >>= fun metric_match ->
    oneofl [ None; Some 7 ] >>= fun tag_match ->
    list_size (int_range 0 2)
      (oneofl
         [
           Route_map.Set_metric 55;
           Route_map.Set_local_pref 200;
           Route_map.Set_community
             { communities = [ comm "65000:9" ]; additive = true };
           Route_map.Set_as_path_prepend [ 65000; 65000 ];
           Route_map.Set_next_hop (ip "10.9.9.9");
           Route_map.Set_tag 42;
           Route_map.Set_weight 5;
           Route_map.Set_origin Bgp.Route.Incomplete;
         ])
    >>= fun sets ->
    (* At most one set clause of each kind, or rendering is ambiguous. *)
    let dedup_kind sets =
      let seen = Hashtbl.create 4 in
      List.filter
        (fun s ->
          let k =
            match s with
            | Route_map.Set_metric _ -> 0
            | Route_map.Set_local_pref _ -> 1
            | Route_map.Set_community _ -> 2
            | Route_map.Set_as_path_prepend _ -> 3
            | Route_map.Set_next_hop _ -> 4
            | Route_map.Set_tag _ -> 5
            | Route_map.Set_weight _ -> 6
            | Route_map.Set_origin _ -> 7
            | Route_map.Set_comm_list_delete _ -> 8
          in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        sets
    in
    return
      {
        I.action;
        prefixes;
        communities;
        as_path_origin;
        as_path_contains;
        local_pref;
        metric_match;
        tag_match;
        sets = dedup_kind sets;
      })

let arb_intent =
  QCheck.make
    ~print:(fun i -> I.to_prompt (I.Route_map i))
    gen_route_map_intent

let prop_render_parse_roundtrip =
  QCheck.Test.make ~name:"intent -> English -> intent roundtrip" ~count:500
    arb_intent
    (fun i ->
      match Llm.Nl_parser.parse_route_map (I.to_prompt (I.Route_map i)) with
      | Error e ->
          QCheck.Test.fail_reportf "parse failed: %s"
            (Llm.Nl_parser.error_message e)
      | Ok i' -> i' = i)

let prop_synthesized_config_verifies =
  (* The clean LLM pipeline: render intent to English, synthesize config,
     parse it, and check it verifies against the intent's own spec. *)
  QCheck.Test.make ~name:"clean synthesis verifies against the intent spec"
    ~count:200 arb_intent
    (fun i ->
      let llm = Llm.Mock_llm.create () in
      let prompt = I.to_prompt (I.Route_map i) in
      let entry = Llm.Prompt_db.retrieve `Route_map in
      match
        Llm.Mock_llm.synthesize llm
          { Llm.Mock_llm.system = entry.Llm.Prompt_db.system;
            few_shot = entry.Llm.Prompt_db.few_shot; user = prompt }
      with
      | Error m -> QCheck.Test.fail_reportf "llm error: %s" m
      | Ok text -> (
          match Parser.parse text with
          | Error m -> QCheck.Test.fail_reportf "unparseable: %s\n%s" m text
          | Ok snippet -> (
              match Database.route_maps snippet with
              | [ rm ] -> (
                  let spec = I.spec_of_route_map i in
                  match Engine.Search_route_policies.verify_stanza snippet rm spec with
                  | Engine.Search_route_policies.Verified -> true
                  | v ->
                      QCheck.Test.fail_reportf "verdict: %s\n%s"
                        (Format.asprintf "%a"
                           Engine.Search_route_policies.pp_verdict v)
                        text)
              | _ -> QCheck.Test.fail_reportf "bad snippet shape:\n%s" text)))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let paper_intent =
  {
    I.action = Action.Permit;
    prefixes =
      [ Netaddr.Prefix_range.make (pfx "100.0.0.0/16") ~ge:None ~le:(Some 23) ];
    communities = [ comm "300:3" ];
    as_path_origin = None;
    as_path_contains = None;
    local_pref = None;
    metric_match = None;
    tag_match = None;
    sets = [ Route_map.Set_metric 55 ];
  }

let clean_text () = Llm.Synthesizer.render (I.Route_map paper_intent)

let test_faults_corrupt () =
  (* Every applicable fault must yield text that either fails to parse
     or fails verification. *)
  let spec = I.spec_of_route_map paper_intent in
  List.iter
    (fun fault ->
      match Llm.Fault_injector.apply fault (clean_text ()) with
      | None -> () (* fault not applicable to this snippet *)
      | Some corrupted -> (
          check
            ("fault changed text: " ^ Llm.Fault_injector.fault_to_string fault)
            true
            (corrupted <> clean_text ());
          match Parser.parse corrupted with
          | Error _ -> () (* syntax fault *)
          | Ok snippet -> (
              match Database.route_maps snippet with
              | [ rm ] ->
                  check
                    ("fault detected: "
                    ^ Llm.Fault_injector.fault_to_string fault)
                    false
                    (Engine.Search_route_policies.verify_stanza snippet rm spec
                    = Engine.Search_route_policies.Verified)
              | _ -> ())))
    Llm.Fault_injector.all_faults

let test_fault_schedule_deterministic () =
  let a = Llm.Fault_injector.schedule ~seed:42 ~faulty_attempts:5 in
  let b = Llm.Fault_injector.schedule ~seed:42 ~faulty_attempts:5 in
  check "same schedule" true (a = b);
  check_int "length" 5 (List.length a)

let test_mock_llm_counts_calls () =
  let llm = Llm.Mock_llm.create () in
  ignore (Llm.Mock_llm.classify llm paper_prompt);
  ignore (Llm.Mock_llm.generate_spec llm paper_prompt);
  let entry = Llm.Prompt_db.retrieve `Route_map in
  ignore
    (Llm.Mock_llm.synthesize llm
       { Llm.Mock_llm.system = entry.Llm.Prompt_db.system;
         few_shot = entry.Llm.Prompt_db.few_shot; user = paper_prompt });
  check_int "total calls" 3 (Llm.Mock_llm.total_calls llm);
  let s = Llm.Mock_llm.stats llm in
  check_int "classify" 1 s.Llm.Mock_llm.classify_calls;
  check_int "spec" 1 s.Llm.Mock_llm.spec_calls;
  check_int "synth" 1 s.Llm.Mock_llm.synthesis_calls

let test_mock_llm_faults_consumed_in_order () =
  let llm =
    Llm.Mock_llm.create
      ~faults:[ Llm.Fault_injector.Flip_action; Llm.Fault_injector.Syntax_error ]
      ()
  in
  let entry = Llm.Prompt_db.retrieve `Route_map in
  let req =
    { Llm.Mock_llm.system = entry.Llm.Prompt_db.system;
      few_shot = entry.Llm.Prompt_db.few_shot; user = paper_prompt }
  in
  let first = Result.get_ok (Llm.Mock_llm.synthesize llm req) in
  let second = Result.get_ok (Llm.Mock_llm.synthesize llm req) in
  let third = Result.get_ok (Llm.Mock_llm.synthesize llm req) in
  check "first flipped" true (first <> clean_text ());
  check "second mangled" true (second <> clean_text ());
  check "third clean" true (third = clean_text ())

(* ------------------------------------------------------------------ *)
(* Spec extraction                                                    *)
(* ------------------------------------------------------------------ *)

let test_spec_generation () =
  let llm = Llm.Mock_llm.create () in
  match Llm.Mock_llm.generate_spec llm paper_prompt with
  | Error m -> Alcotest.failf "spec generation failed: %s" m
  | Ok spec ->
      check "permit" true (spec.Engine.Spec.action = Action.Permit);
      check "sets" true (spec.Engine.Spec.sets = [ Route_map.Set_metric 55 ]);
      (* JSON rendering matches the paper's fields. *)
      let j = Engine.Spec.to_json spec in
      check "has prefix field" true (Json.member "prefix" j <> None);
      check "has community field" true (Json.member "community" j <> None);
      check "has set field" true (Json.member "set" j <> None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "llm"
    [
      ( "classifier",
        [ Alcotest.test_case "classification" `Quick test_classifier ] );
      ( "nl-parser",
        [
          Alcotest.test_case "paper prompt" `Quick test_parse_paper_prompt;
          Alcotest.test_case "variants" `Quick test_parse_variants;
          Alcotest.test_case "rejects nonsense" `Quick test_parse_rejects;
          Alcotest.test_case "acl prompt" `Quick test_parse_acl_prompt;
          q prop_render_parse_roundtrip;
        ] );
      ( "synthesizer",
        [ q prop_synthesized_config_verifies ] );
      ( "faults",
        [
          Alcotest.test_case "faults break verification" `Quick test_faults_corrupt;
          Alcotest.test_case "deterministic schedule" `Quick
            test_fault_schedule_deterministic;
          Alcotest.test_case "call accounting" `Quick test_mock_llm_counts_calls;
          Alcotest.test_case "fault order" `Quick
            test_mock_llm_faults_consumed_in_order;
        ] );
      ( "spec-gen",
        [ Alcotest.test_case "paper spec" `Quick test_spec_generation ] );
    ]
