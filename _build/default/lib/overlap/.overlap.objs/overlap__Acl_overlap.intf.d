lib/overlap/acl_overlap.mli: Config
