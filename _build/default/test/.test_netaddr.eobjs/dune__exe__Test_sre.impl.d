test/test_sre.ml: Alcotest Alphabet As_path_regex Community_regex List Netaddr Printf QCheck QCheck_alcotest Regex Sre String
