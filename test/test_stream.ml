(* Tests for lib/analytics Stream: the incremental tail-following fold
   behind `clarify report --follow` and `clarify fleet status`.

   The load-bearing property is the merge law: fold(serial) ==
   fold(pooled) == the Session.load_file-based report, byte for byte,
   because all three go through the same Report.Acc fold and Acc.merge
   is associative. *)

module St = Analytics.Stream
module S = Analytics.Session
module Rp = Analytics.Report

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let fixture = "../examples/acl_session.jsonl"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let append_file path text =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc text;
  close_out oc

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stream_test_%d" (Unix.getpid ()))
  in
  let clean () =
    if Sys.file_exists dir then
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir)
  in
  if Sys.file_exists dir then clean () else Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      clean ();
      Unix.rmdir dir)
    (fun () -> f dir)

let fixture_events () =
  match S.load_file fixture with
  | Ok s -> List.length s.S.events
  | Error m -> Alcotest.failf "cannot load %s: %s" fixture m

(* ------------------------------------------------------------------ *)
(* Tail-follow: only complete lines fold; a partial line waits          *)
(* ------------------------------------------------------------------ *)

let test_follow_mid_append () =
  with_temp_dir @@ fun dir ->
  let total = fixture_events () in
  let text = read_file fixture in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  let line n = List.nth lines n in
  let path = Filename.concat dir "r1.jsonl" in
  (* First two whole lines plus the front half of the third: the fold
     must stop at the last newline and hold the partial tail. *)
  let third = line 2 in
  let half = String.sub third 0 (String.length third / 2) in
  write_file path (line 0 ^ "\n" ^ line 1 ^ "\n" ^ half);
  let f = St.open_file path in
  (match St.poll_file f with
  | Ok n -> checki "two complete lines fold" 2 n
  | Error m -> Alcotest.failf "poll failed: %s" m);
  checki "partial line is not an event" 2 (St.file_events f);
  (* Complete the held line and append the rest of the log. *)
  let rest =
    String.sub third (String.length half)
      (String.length third - String.length half)
    ^ "\n"
    ^ String.concat "\n" (List.filteri (fun i _ -> i > 2) lines)
    ^ "\n"
  in
  append_file path rest;
  (match St.poll_file f with
  | Ok n -> checki "the remainder folds on the next poll" (total - 2) n
  | Error m -> Alcotest.failf "second poll failed: %s" m);
  checki "all events folded" total (St.file_events f);
  checkb "no error" true (St.file_error f = None);
  (* A third poll with nothing appended is a no-op. *)
  match St.poll_file f with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "idle poll folded %d events" n
  | Error m -> Alcotest.failf "idle poll failed: %s" m

(* ------------------------------------------------------------------ *)
(* Tolerant final line, fatal mid-file garbage                         *)
(* ------------------------------------------------------------------ *)

let test_truncated_final_line_tolerated () =
  with_temp_dir @@ fun dir ->
  let total = fixture_events () in
  let text = read_file fixture in
  let path = Filename.concat dir "crash.jsonl" in
  write_file path (String.sub text 0 (String.length text - 7));
  (match St.fold_file path with
  | Error m -> Alcotest.failf "truncated tail refused: %s" m
  | Ok (name, acc) ->
      checks "name from basename" "crash" name;
      checki "exactly the damaged line is dropped" (total - 1)
        (Rp.Acc.events acc));
  (* The same rule covers a complete-but-malformed final line. *)
  write_file path (text ^ "{not json\n");
  match St.fold_file path with
  | Error m -> Alcotest.failf "malformed tail refused: %s" m
  | Ok (_, acc) -> checki "held line dropped" total (Rp.Acc.events acc)

let test_mid_file_garbage_is_sticky () =
  with_temp_dir @@ fun dir ->
  let text = read_file fixture in
  let path = Filename.concat dir "corrupt.jsonl" in
  (* Garbage with content after it is corruption, not a crash tail. *)
  write_file path (text ^ "{not json\n");
  let f = St.open_file path in
  (match St.poll_file f with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "held tail must not fail yet: %s" m);
  append_file path text;
  let first =
    match St.poll_file f with
    | Ok _ -> Alcotest.fail "content after a malformed line accepted"
    | Error m -> m
  in
  checkb "error names the bad line" true (contains first "line");
  (* Sticky: every later poll repeats the same error. *)
  match St.poll_file f with
  | Ok _ -> Alcotest.fail "sticky error cleared itself"
  | Error m -> checks "same error" first m

let test_shrunk_file_is_an_error () =
  with_temp_dir @@ fun dir ->
  let text = read_file fixture in
  let path = Filename.concat dir "shrink.jsonl" in
  write_file path text;
  let f = St.open_file path in
  (match St.poll_file f with Ok _ -> () | Error m -> Alcotest.fail m);
  write_file path (String.sub text 0 10);
  match St.poll_file f with
  | Ok _ -> Alcotest.fail "a shrunk file folded as if appended"
  | Error m -> checkb "error mentions shrink" true (contains m "shrank")

(* ------------------------------------------------------------------ *)
(* Directory scans are sorted, independent of creation order           *)
(* ------------------------------------------------------------------ *)

let test_dir_scan_sorted () =
  with_temp_dir @@ fun dir ->
  let text = read_file fixture in
  (* Created in anti-sorted order; both the streaming scan and the
     Session path expansion must still visit them name-sorted, so
     reports are byte-stable across filesystems. *)
  List.iter
    (fun name -> write_file (Filename.concat dir name) text)
    [ "r2.jsonl"; "r0.jsonl"; "r1.jsonl"; "notes.txt" ];
  let d = St.open_dir dir in
  ignore (St.poll d);
  Alcotest.(check (list string))
    "stream scan sorted, *.jsonl only" [ "r0"; "r1"; "r2" ]
    (List.map St.file_name (St.files d));
  Alcotest.(check (list string))
    "Session.expand_paths sorted, *.jsonl only"
    [ "r0.jsonl"; "r1.jsonl"; "r2.jsonl" ]
    (List.map Filename.basename (S.expand_paths [ dir ]))

(* A file appearing between polls is picked up by the next poll. *)
let test_dir_picks_up_new_files () =
  with_temp_dir @@ fun dir ->
  let text = read_file fixture in
  write_file (Filename.concat dir "b.jsonl") text;
  let d = St.open_dir dir in
  ignore (St.poll d);
  checki "one follower" 1 (List.length (St.files d));
  write_file (Filename.concat dir "a.jsonl") text;
  ignore (St.poll d);
  Alcotest.(check (list string))
    "new file joins, order re-sorted" [ "a"; "b" ]
    (List.map St.file_name (St.files d))

(* ------------------------------------------------------------------ *)
(* The merge law on a real fleet: serial == pooled == batch             *)
(* ------------------------------------------------------------------ *)

let test_fleet_report_serial_pooled_batch_identical () =
  with_temp_dir @@ fun dir ->
  (* A real E5 recording: per-router logs plus the fleet.json manifest
     (which every report path must skip: it is not a *.jsonl). *)
  ignore (Evaluation.E5_fleet.run ~record_dir:dir ~routers:6 ());
  let render r = (Rp.to_markdown r, Rp.to_csv r) in
  let serial =
    match St.report_paths [ dir ] with
    | Ok r -> render r
    | Error m -> Alcotest.failf "serial fold failed: %s" m
  in
  let pool = Parallel.Pool.create ~domains:4 () in
  let pooled =
    match St.report_paths ~pool [ dir ] with
    | Ok r -> render r
    | Error m -> Alcotest.failf "pooled fold failed: %s" m
  in
  let batch =
    match S.load ~tolerant:true [ dir ] with
    | Ok sessions -> render (Rp.of_sessions sessions)
    | Error m -> Alcotest.failf "session load failed: %s" m
  in
  checks "pooled md == serial md" (fst serial) (fst pooled);
  checks "pooled csv == serial csv" (snd serial) (snd pooled);
  checks "batch md == serial md" (fst serial) (fst batch);
  checks "batch csv == serial csv" (snd serial) (snd batch);
  (* The live follower over the same complete logs agrees too. *)
  let d = St.open_dir dir in
  ignore (St.poll d);
  let followed = render (St.report_of_dir d) in
  checks "follow md == serial md" (fst serial) (fst followed);
  (* And the fleet rows carry E5 progress: every router completed. *)
  match St.report_paths [ dir ] with
  | Error m -> Alcotest.fail m
  | Ok r ->
      checki "six routers" 6 (List.length r.Rp.routers);
      List.iter
        (fun (row : Rp.router_stats) ->
          match row.Rp.fleet with
          | Some fl ->
              checkb (row.Rp.router ^ " completed") true fl.Rp.completed;
              checkb
                (row.Rp.router ^ " wall recorded")
                true (fl.Rp.wall_ns > 0.)
          | None -> Alcotest.failf "%s has no fleet info" row.Rp.router)
        r.Rp.routers

let () =
  Alcotest.run "stream"
    [
      ( "follow",
        [
          Alcotest.test_case "mid-append partial line" `Quick
            test_follow_mid_append;
          Alcotest.test_case "new files join a dir" `Quick
            test_dir_picks_up_new_files;
        ] );
      ( "tolerance",
        [
          Alcotest.test_case "truncated final line" `Quick
            test_truncated_final_line_tolerated;
          Alcotest.test_case "mid-file garbage sticky" `Quick
            test_mid_file_garbage_is_sticky;
          Alcotest.test_case "shrunk file" `Quick test_shrunk_file_is_an_error;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dir scans sorted" `Quick test_dir_scan_sorted;
          Alcotest.test_case "fleet serial == pooled == batch" `Quick
            test_fleet_report_serial_pooled_batch_identical;
        ] );
    ]
