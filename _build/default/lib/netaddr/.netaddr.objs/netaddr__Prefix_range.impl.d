lib/netaddr/prefix_range.ml: Format Int Ipv4 Option Prefix Printf String
