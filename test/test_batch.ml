(* Batch synthesis equivalence: for every family (route-map, ACL,
   prefix-list), a batch run over N intents must produce exactly the
   configuration N sequential pipeline runs produce, asking a question
   set contained in the sequential one — serial and pooled. Plus pinned
   cases: a conflicting pair with its witness checked exactly, a
   conflict-free batch compiling the target partition once, and the
   answer-cache dedup regression (policy/position are part of the key,
   not just the rendered text). *)

open Config
module I = Llm.Intent
module P = Clarify.Pipeline
module B = Clarify.Batch
module D = Clarify.Disambiguator
module AD = Clarify.Acl_disambiguator
module PD = Clarify.Prefix_list_disambiguator
module DC = Clarify.Disambig_common

let pfx = Netaddr.Prefix.of_string_exn
let check_int = Alcotest.(check int)

(* One pool for every pooled case; workers are reused across calls. *)
let pool = lazy (Parallel.Pool.create ~domains:4 ())
let get_pool = function true -> Some (Lazy.force pool) | false -> None

let config_string db = Parser.to_string db

(* Questions are compared through their telemetry views, tagged with the
   target policy: the view carries position, boundary seq, the rendered
   example and both candidate behaviours. *)
let rm_key target q = (target, D.view q)
let acl_key target q = (target, AD.view q)
let pd_key target q = (target, PD.view q)

let subset ~of_:ys xs = List.for_all (fun x -> List.mem x ys) xs

let same_multiset xs ys =
  List.length xs = List.length ys && subset ~of_:ys xs && subset ~of_:xs ys

(* ------------------------------------------------------------------ *)
(* Route-map scenarios                                                *)
(* ------------------------------------------------------------------ *)

let base_lists =
  {|ip prefix-list WIDE permit 10.0.0.0/8 le 24
ip prefix-list NARROW permit 10.1.0.0/16 le 32
ip prefix-list OTHER permit 99.0.0.0/8 le 16
ip as-path access-list FROM32 permit _32$
ip community-list expanded GOLD permit _300:3_
|}

let gen_action = QCheck.Gen.oneofl [ Action.Permit; Action.Deny ]

let gen_existing_map =
  QCheck.Gen.(
    list_size (int_range 1 3)
      (pair gen_action
         (oneofl
            [
              [ Route_map.Match_prefix_list [ "WIDE" ] ];
              [ Route_map.Match_prefix_list [ "NARROW" ] ];
              [ Route_map.Match_prefix_list [ "OTHER" ] ];
              [ Route_map.Match_as_path [ "FROM32" ] ];
              [ Route_map.Match_community [ "GOLD" ] ];
              [ Route_map.Match_local_pref 300 ];
            ]))
    >>= fun stanzas ->
    return
      (Route_map.make "TARGET"
         (List.mapi
            (fun i (action, matches) ->
              Route_map.stanza ~seq:((i + 1) * 10) ~matches action)
            stanzas)))

(* Community- and as-path-free intents: batch fast-path boundaries must
   be byte-identical to sequential ones, and extra candidates in the
   shared sweep context must not perturb witness sampling (DESIGN.md
   §12). Prefix windows and set clauses still generate overlaps and
   genuine conflicts between intents. *)
let gen_rm_intent =
  QCheck.Gen.(
    gen_action >>= fun action ->
    oneofl
      [
        [ Netaddr.Prefix_range.make (pfx "10.0.0.0/8") ~ge:None ~le:(Some 16) ];
        [ Netaddr.Prefix_range.make (pfx "10.1.0.0/16") ~ge:None ~le:(Some 24) ];
        [ Netaddr.Prefix_range.exact (pfx "99.0.0.0/8") ];
        [ Netaddr.Prefix_range.make (pfx "172.16.0.0/12") ~ge:None ~le:(Some 20) ];
      ]
    >>= fun prefixes ->
    oneofl [ []; [ Route_map.Set_metric 55 ]; [ Route_map.Set_local_pref 200 ] ]
    >>= fun sets ->
    return
      {
        I.action;
        prefixes;
        communities = [];
        as_path_origin = None;
        as_path_contains = None;
        local_pref = None;
        metric_match = None;
        tag_match = None;
        sets;
      })

let gen_rm_scenario =
  QCheck.Gen.(pair gen_existing_map (list_size (int_range 2 3) gen_rm_intent))

let arb_rm_scenario =
  QCheck.make
    ~print:(fun (rm, intents) ->
      Format.asprintf "%a@.%s" Route_map.pp rm
        (String.concat "\n"
           (List.map (fun i -> I.to_prompt (I.Route_map i)) intents)))
    gen_rm_scenario

let rm_setup rm = Database.add_route_map (Parser.parse_exn base_lists) rm

let sequential_route_maps db prompts =
  let llm = Llm.Mock_llm.create () in
  List.fold_left
    (fun (db, qs) prompt ->
      match
        P.run_route_map_update ~llm ~oracle:D.always_new ~db ~target:"TARGET"
          ~prompt ()
      with
      | Error e ->
          QCheck.Test.fail_reportf "sequential: %s" (P.error_to_string e)
      | Ok r -> (r.P.db, qs @ List.map (rm_key "TARGET") r.P.questions))
    (db, []) prompts

let batch_route_maps ~pooled db prompts =
  let llm = Llm.Mock_llm.create () in
  let items =
    List.map (fun prompt -> B.Route_map_update { target = "TARGET"; prompt }) prompts
  in
  let oracle ~intent:_ ~target:_ _ = DC.Prefer_new in
  match B.run ?pool:(get_pool pooled) ~llm ~oracle ~db items with
  | Error e -> QCheck.Test.fail_reportf "batch: %s" (B.error_to_string e)
  | Ok r ->
      let qs =
        List.concat_map
          (function
            | B.Route_map_result rr ->
                List.map (rm_key "TARGET") rr.P.questions
            | B.Acl_result _ -> [])
          r.B.items
      in
      (r, qs)

let prop_rm_batch_equals_sequential ~pooled ~count =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "route-map batch == sequential (%s)"
         (if pooled then "pooled" else "serial"))
    ~count arb_rm_scenario
    (fun (rm, intents) ->
      let db = rm_setup rm in
      let prompts = List.map (fun i -> I.to_prompt (I.Route_map i)) intents in
      let db_seq, seq_qs = sequential_route_maps db prompts in
      let report, batch_qs = batch_route_maps ~pooled db prompts in
      if config_string report.B.db <> config_string db_seq then
        QCheck.Test.fail_reportf "final configs differ:@.%s@.-- vs --@.%s"
          (config_string report.B.db)
          (config_string db_seq);
      if not (subset ~of_:seq_qs batch_qs) then
        QCheck.Test.fail_reportf
          "batch asked a question the sequential run never asked";
      (* With the always-new user the question streams are in fact
         identical, not just contained. *)
      same_multiset batch_qs seq_qs)

(* ------------------------------------------------------------------ *)
(* ACL scenarios                                                      *)
(* ------------------------------------------------------------------ *)

let gen_existing_acl =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (oneofl
         [
           Acl.rule ~protocol:Packet.Tcp ~dst_port:(Acl.Eq 23) Action.Deny;
           Acl.rule ~protocol:Packet.Tcp
             ~src:(Acl.addr_of_prefix (pfx "10.20.0.0/16"))
             Action.Permit;
           Acl.rule ~protocol:Packet.Udp ~dst_port:(Acl.Eq 53) Action.Permit;
           Acl.rule ~protocol:Packet.Udp Action.Deny;
           Acl.rule ~protocol:Packet.Icmp
             ~src:(Acl.addr_of_prefix (pfx "10.20.0.0/16"))
             Action.Permit;
           Acl.rule ~dst:(Acl.addr_of_prefix (pfx "192.168.0.0/24")) Action.Deny;
         ])
    >>= fun rules ->
    return
      (Acl.make "FW"
         (List.mapi (fun i (r : Acl.rule) -> { r with seq = (i + 1) * 10 }) rules)))

let gen_acl_intent =
  QCheck.Gen.(
    gen_action >>= fun action ->
    oneofl [ Packet.Tcp; Packet.Udp ] >>= fun protocol ->
    oneofl [ Acl.Any; Acl.addr_of_prefix (pfx "10.20.0.0/16") ] >>= fun src ->
    oneofl [ Acl.Any_port; Acl.Eq 443; Acl.Eq 53; Acl.Range (8000, 8080) ]
    >>= fun dst_port ->
    return (I.acl_intent ~protocol ~src ~dst_port action))

let gen_acl_scenario =
  QCheck.Gen.(pair gen_existing_acl (list_size (int_range 2 3) gen_acl_intent))

let arb_acl_scenario =
  QCheck.make
    ~print:(fun (acl, intents) ->
      Format.asprintf "%a@.%s" Acl.pp acl
        (String.concat "\n" (List.map I.to_prompt intents)))
    gen_acl_scenario

let acl_setup acl = Database.add_acl Database.empty acl

let sequential_acls db prompts =
  let llm = Llm.Mock_llm.create () in
  List.fold_left
    (fun (db, qs) prompt ->
      match
        P.run_acl_update ~llm
          ~oracle:(fun _ -> AD.Prefer_new)
          ~db ~target:"FW" ~prompt ()
      with
      | Error e ->
          QCheck.Test.fail_reportf "sequential: %s" (P.error_to_string e)
      | Ok r -> (r.P.db, qs @ List.map (acl_key "FW") r.P.questions))
    (db, []) prompts

let batch_acls ~pooled db prompts =
  let llm = Llm.Mock_llm.create () in
  let items =
    List.map (fun prompt -> B.Acl_update { target = "FW"; prompt }) prompts
  in
  let oracle ~intent:_ ~target:_ _ = DC.Prefer_new in
  match B.run ?pool:(get_pool pooled) ~llm ~oracle ~db items with
  | Error e -> QCheck.Test.fail_reportf "batch: %s" (B.error_to_string e)
  | Ok r ->
      let qs =
        List.concat_map
          (function
            | B.Acl_result ar -> List.map (acl_key "FW") ar.P.questions
            | B.Route_map_result _ -> [])
          r.B.items
      in
      (r, qs)

let prop_acl_batch_equals_sequential ~pooled ~count =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "acl batch == sequential (%s)"
         (if pooled then "pooled" else "serial"))
    ~count arb_acl_scenario
    (fun (acl, intents) ->
      let db = acl_setup acl in
      let prompts = List.map I.to_prompt intents in
      let db_seq, seq_qs = sequential_acls db prompts in
      let report, batch_qs = batch_acls ~pooled db prompts in
      config_string report.B.db = config_string db_seq
      && same_multiset batch_qs seq_qs)

(* ------------------------------------------------------------------ *)
(* Prefix-list scenarios                                              *)
(* ------------------------------------------------------------------ *)

let gen_range =
  QCheck.Gen.oneofl
    [
      Netaddr.Prefix_range.make (pfx "10.0.0.0/8") ~ge:None ~le:(Some 24);
      Netaddr.Prefix_range.make (pfx "10.1.0.0/16") ~ge:None ~le:(Some 32);
      Netaddr.Prefix_range.make (pfx "10.0.0.0/8") ~ge:(Some 25) ~le:None;
      Netaddr.Prefix_range.exact (pfx "99.0.0.0/8");
      Netaddr.Prefix_range.make (pfx "172.16.0.0/12") ~ge:None ~le:(Some 20);
    ]

let gen_existing_prefix_list =
  QCheck.Gen.(
    list_size (int_range 1 4) (pair gen_action gen_range) >>= fun entries ->
    return
      (Prefix_list.make "PL"
         (List.mapi
            (fun i (action, range) ->
              Prefix_list.entry ~seq:((i + 1) * 10) ~action range)
            entries)))

let gen_prefix_scenario =
  QCheck.Gen.(
    pair gen_existing_prefix_list
      (list_size (int_range 2 4) (pair gen_action gen_range)))

let arb_prefix_scenario =
  QCheck.make
    ~print:(fun (pl, entries) ->
      Format.asprintf "%a@.+%d entries" Prefix_list.pp pl (List.length entries))
    gen_prefix_scenario

let prop_prefix_batch_equals_sequential ~count =
  QCheck.Test.make ~name:"prefix-list batch == sequential" ~count
    arb_prefix_scenario
    (fun (pl, entries) ->
      let entries =
        List.map
          (fun (action, range) -> Prefix_list.entry ~action range)
          entries
      in
      (* Sequential: one disambiguation per entry against the evolving
         list, always-new user. *)
      let _, seq_qs, seq_pl =
        List.fold_left
          (fun (cur, qs, _) entry ->
            match
              PD.run ~target:cur ~entry ~oracle:(fun _ -> PD.Prefer_new) ()
            with
            | Error _ -> QCheck.Test.fail_report "sequential: inconsistent"
            | Ok o ->
                ( o.PD.prefix_list,
                  qs @ List.map (pd_key "PL") o.PD.questions,
                  o.PD.prefix_list ))
          (pl, [], pl) entries
      in
      let db = Database.add_prefix_list Database.empty pl in
      let items = List.map (fun entry -> { B.target = "PL"; entry }) entries in
      let oracle ~intent:_ ~target:_ _ = DC.Prefer_new in
      match B.insert_prefix_list_entries ~oracle ~db items with
      | Error e -> QCheck.Test.fail_reportf "batch: %s" (B.error_to_string e)
      | Ok r ->
          let batch_qs =
            List.concat_map
              (fun (o : PD.outcome) -> List.map (pd_key "PL") o.PD.questions)
              r.B.outcomes
          in
          let final =
            match Database.prefix_list r.B.db "PL" with
            | Some got -> got
            | None -> QCheck.Test.fail_report "batch dropped the prefix list"
          in
          Format.asprintf "%a" Prefix_list.pp final
          = Format.asprintf "%a" Prefix_list.pp seq_pl
          && same_multiset batch_qs seq_qs)

(* ------------------------------------------------------------------ *)
(* Pinned cases                                                       *)
(* ------------------------------------------------------------------ *)

let lab_edge =
  {|ip access-list extended FW
 deny tcp any any eq 23
 permit tcp 10.20.0.0 0.0.255.255 any
 deny udp any any|}

(* Two intents whose match regions coincide and whose actions differ:
   the sweep must report exactly one conflict edge, oriented from the
   earlier intent to the later one, with a differential witness packet
   that both rules match and on which they disagree. *)
let test_pinned_acl_conflict () =
  let db = Parser.parse_exn lab_edge in
  let llm = Llm.Mock_llm.create () in
  let items =
    [
      B.Acl_update
        {
          target = "FW";
          prompt =
            "Write an access list rule that permits tcp traffic from \
             anywhere to any destination with destination port 443.";
        };
      B.Acl_update
        {
          target = "FW";
          prompt =
            "Write an access list rule that denies tcp traffic from anywhere \
             to any destination with destination port 443.";
        };
    ]
  in
  let oracle ~intent:_ ~target:_ _ = DC.Prefer_new in
  let report =
    match B.run ~llm ~oracle ~db items with
    | Ok r -> r
    | Error e -> Alcotest.failf "batch failed: %s" (B.error_to_string e)
  in
  check_int "one conflict edge" 1 (List.length report.B.conflicts);
  let c = List.hd report.B.conflicts in
  check_int "edge from the first intent" 0 c.B.intent_a;
  check_int "edge to the second intent" 1 c.B.intent_b;
  Alcotest.(check string) "edge target" "FW" c.B.target;
  match c.B.witness with
  | B.Acl_witness d ->
      Alcotest.(check bool)
        "witness actions disagree (permit vs deny)" true
        (d.Engine.Compare_acls.action_a = Action.Permit
        && d.Engine.Compare_acls.action_b = Action.Deny);
      let p = d.Engine.Compare_acls.packet in
      Alcotest.(check string)
        "witness protocol" "tcp"
        (Packet.protocol_to_string p.Packet.protocol);
      check_int "witness destination port" 443 p.Packet.dst_port;
      (* Both synthesized rules must actually match the witness and
         disagree on it — the edge is genuine, not a rendering. *)
      let rule_of k =
        match List.nth report.B.items k with
        | B.Acl_result ar -> ar.P.rule
        | B.Route_map_result _ -> Alcotest.fail "expected an ACL result"
      in
      Alcotest.(check bool)
        "witness matched by both rules" true
        (Acl.match_rule (rule_of 0) p && Acl.match_rule (rule_of 1) p)
  | _ -> Alcotest.fail "expected an ACL witness"

(* A conflict-free batch: three mutually match-disjoint route-map
   intents. The whole run must build exactly ONE symbolic context (one
   compiled partition of the target, shared by all three boundary sets
   and every pairwise check), report no overlap, and ask exactly the
   questions the three sequential runs ask — zero inter-intent
   questions. *)
let test_conflict_free_single_context () =
  let rm =
    Route_map.make "TARGET"
      [
        Route_map.stanza ~seq:10
          ~matches:[ Route_map.Match_prefix_list [ "WIDE" ] ]
          Action.Deny;
        Route_map.stanza ~seq:20
          ~matches:[ Route_map.Match_local_pref 300 ]
          Action.Permit;
      ]
  in
  let db = rm_setup rm in
  let prompts =
    [
      "Write a route-map stanza that permits routes containing the prefix \
       99.0.0.0/8. Their MED value should be set to 55.";
      "Write a route-map stanza that denies routes containing the prefix \
       172.16.0.0/12 with mask length less than or equal to 20.";
      "Write a route-map stanza that permits routes containing the prefix \
       192.168.0.0/16. Their local preference should be set to 200.";
    ]
  in
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let db_seq, seq_qs = sequential_route_maps db prompts in
  let before = Obs.Counter.value Engine.Metrics.adjacent_contexts in
  let report, batch_qs = batch_route_maps ~pooled:false db prompts in
  let after = Obs.Counter.value Engine.Metrics.adjacent_contexts in
  check_int "one symbolic context for the whole batch" 1 (after - before);
  check_int "no overlap edges" 0 report.B.overlap_pairs;
  check_int "no conflict edges" 0 (List.length report.B.conflicts);
  Alcotest.(check string)
    "same final config" (config_string db_seq)
    (config_string report.B.db);
  Alcotest.(check bool)
    "zero inter-intent questions" true
    (same_multiset batch_qs seq_qs)

(* Satellite regression: the shared answer cache keys on the policy AND
   the question's coordinates, never on the rendered text alone. *)
let test_answer_cache_dedup () =
  let cache = DC.Answer_cache.create () in
  let v =
    {
      DC.position = 1;
      boundary_seq = 10;
      example = "Network: 10.0.0.0/8";
      if_new_first = "ACTION: permit";
      if_old_first = "ACTION: deny";
    }
  in
  DC.Answer_cache.add cache ~policy:"ISP_OUT" v DC.Prefer_new;
  Alcotest.(check bool)
    "identical text, other policy: miss" true
    (DC.Answer_cache.find cache ~policy:"ISP_IN" v = None);
  Alcotest.(check bool)
    "identical text, other position: miss" true
    (DC.Answer_cache.find cache ~policy:"ISP_OUT" { v with DC.position = 2 }
    = None);
  Alcotest.(check bool)
    "identical text, other boundary seq: miss" true
    (DC.Answer_cache.find cache ~policy:"ISP_OUT"
       { v with DC.boundary_seq = 20 }
    = None);
  check_int "misses are not hits" 0 (DC.Answer_cache.hits cache);
  Alcotest.(check bool)
    "same policy and coordinates: hit" true
    (DC.Answer_cache.find cache ~policy:"ISP_OUT" v = Some DC.Prefer_new);
  check_int "one hit counted" 1 (DC.Answer_cache.hits cache)

(* The cache in action: the same entry inserted twice into the same
   prefix list, with a user who keeps existing behaviour. The first
   insertion lands at the bottom, leaving every original coordinate
   untouched, so the second insertion's boundary question recurs
   verbatim and is served from the cache — the user is consulted
   once. *)
let test_cache_saves_repeated_questions () =
  let pl =
    Prefix_list.make "PL"
      [
        Prefix_list.entry ~seq:10 ~action:Action.Permit
          (Netaddr.Prefix_range.make (pfx "10.0.0.0/8") ~ge:None ~le:(Some 24));
      ]
  in
  let db = Database.add_prefix_list Database.empty pl in
  let entry =
    Prefix_list.entry ~action:Action.Deny
      (Netaddr.Prefix_range.make (pfx "10.0.0.0/8") ~ge:None ~le:(Some 16))
  in
  let consulted = ref 0 in
  let oracle ~intent:_ ~target:_ _ =
    incr consulted;
    DC.Prefer_old
  in
  match
    B.insert_prefix_list_entries ~oracle ~db [ { B.target = "PL"; entry }; { B.target = "PL"; entry } ]
  with
  | Error e -> Alcotest.failf "batch failed: %s" (B.error_to_string e)
  | Ok r ->
      Alcotest.(check bool) "saved at least one question" true (r.B.questions_saved >= 1);
      let asked =
        List.fold_left
          (fun n (o : PD.outcome) -> n + List.length o.PD.questions)
          0 r.B.outcomes
      in
      check_int "user consulted once per distinct question"
        (asked - r.B.questions_saved)
        !consulted

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "batch"
    [
      ( "equivalence",
        [
          q (prop_rm_batch_equals_sequential ~pooled:false ~count:200);
          q (prop_rm_batch_equals_sequential ~pooled:true ~count:60);
          q (prop_acl_batch_equals_sequential ~pooled:false ~count:200);
          q (prop_acl_batch_equals_sequential ~pooled:true ~count:60);
          q (prop_prefix_batch_equals_sequential ~count:200);
        ] );
      ( "pinned",
        [
          Alcotest.test_case "conflicting ACL pair with witness" `Quick
            test_pinned_acl_conflict;
          Alcotest.test_case "conflict-free batch, one context" `Quick
            test_conflict_free_single_context;
          Alcotest.test_case "answer cache keyed on policy+position" `Quick
            test_answer_cache_dedup;
          Alcotest.test_case "cache saves repeated questions" `Quick
            test_cache_saves_repeated_questions;
        ] );
    ]
