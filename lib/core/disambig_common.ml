(* The machinery shared by the three insertion disambiguators
   (route-maps, ACLs, prefix lists). Each instance keeps its own
   domain-specific question type; everything below works through a
   [view] that renders a question to the common telemetry shape, so the
   question/probe event schema and the binary-search structure are
   defined exactly once. *)

type answer = Prefer_new | Prefer_old

let answer_to_string = function Prefer_new -> "new" | Prefer_old -> "old"

(* What every question looks like to the flight recorder: where the
   boundary is, the differential example, and the two behaviours the
   user chooses between — already rendered, because only the instance
   knows how to print a route / packet / prefix. *)
type view = {
  position : int;
  boundary_seq : int;
  example : string;
  if_new_first : string;
  if_old_first : string;
}

(* A question-asking loop: accumulates questions in order, counts them,
   consults the oracle and emits one "question" event per exchange.
   Returns [(asked, ask)]; [asked ()] yields the questions asked so
   far, oldest first. *)
let asker ~subsystem ~counter ~(view : 'q -> view) ~(oracle : 'q -> answer) =
  let asked = ref [] in
  let ask q =
    asked := q :: !asked;
    Obs.Counter.incr counter;
    let a = oracle q in
    Telemetry.emit ~kind:"question" (fun () ->
        let v = view q in
        [
          ("subsystem", Json.String subsystem);
          ("index", Json.Int (List.length !asked - 1));
          ("position", Json.Int v.position);
          ("boundary_seq", Json.Int v.boundary_seq);
          ("example", Json.String v.example);
          ("if_new_first", Json.String v.if_new_first);
          ("if_old_first", Json.String v.if_old_first);
          ("answer", Json.String (answer_to_string a));
        ]);
    a
  in
  ((fun () -> List.rev !asked), ask)

(* The paper's Section 4 search: find the leftmost boundary answered
   Prefer_new. Under the well-formedness conditions answers are
   monotone (a run of Prefer_old then a run of Prefer_new), so the
   invariant is: boundaries < lo answered Prefer_old, >= hi Prefer_new.
   Returns the first Prefer_new index, or [Array.length arr] when every
   boundary prefers the old behaviour. One "probe" event and one probe
   counter tick per iteration. *)
let binary_search ~subsystem ~probes ~(ask : 'q -> answer) (arr : 'q array) =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Obs.Counter.incr probes;
    Telemetry.emit ~kind:"probe" (fun () ->
        [
          ("subsystem", Json.String subsystem);
          ("lo", Json.Int !lo);
          ("hi", Json.Int !hi);
          ("mid", Json.Int mid);
        ]);
    match ask arr.(mid) with
    | Prefer_new -> hi := mid
    | Prefer_old -> lo := mid + 1
  done;
  !hi

(* Consistency check for Linear mode: once a boundary is answered
   Prefer_new, every later boundary must be too. *)
let monotone answers =
  let rec go seen_new = function
    | [] -> true
    | (_, Prefer_new) :: rest -> go true rest
    | (_, Prefer_old) :: rest -> (not seen_new) && go false rest
  in
  go false answers

(* The placement implied by a monotone answer list: the first boundary
   the user wants the new stanza to win, or [default] (append at the
   bottom) when there is none. *)
let first_new_position ~default ~position answers =
  match List.find_opt (fun (_, a) -> a = Prefer_new) answers with
  | Some (q, _) -> position q
  | None -> default

(* Shared answer cache for batch runs: when several intents in a batch
   surface the *same* placement question against the same policy, the
   user's first answer is reused instead of asking again.

   The key deliberately includes the policy name and the question's
   (position, boundary_seq) coordinates, not just the rendered text:
   two intents can produce byte-identical question text against
   different policies or at different positions, and those are
   different questions — merging them on text alone would silently
   answer one intent's question with another's. *)
module Answer_cache = struct
  type key = {
    policy : string;
    position : int;
    boundary_seq : int;
    example : string;
    if_new_first : string;
    if_old_first : string;
  }

  type t = { tbl : (key, answer) Hashtbl.t; mutable hits : int }

  let create () = { tbl = Hashtbl.create 16; hits = 0 }

  let key ~policy (v : view) =
    {
      policy;
      position = v.position;
      boundary_seq = v.boundary_seq;
      example = v.example;
      if_new_first = v.if_new_first;
      if_old_first = v.if_old_first;
    }

  let find t ~policy v =
    match Hashtbl.find_opt t.tbl (key ~policy v) with
    | Some a ->
        t.hits <- t.hits + 1;
        Some a
    | None -> None

  let add t ~policy v a = Hashtbl.replace t.tbl (key ~policy v) a
  let hits t = t.hits

  (* Wrap an oracle so repeated questions (same policy, same
     coordinates, same rendered content) are served from the cache. *)
  let cached t ~policy ~(view : 'q -> view) (oracle : 'q -> answer) q =
    let v = view q in
    match find t ~policy v with
    | Some a -> a
    | None ->
        let a = oracle q in
        add t ~policy v a;
        a
end

(* Answers drawn from a fixed list (scripted tests/CLIs and replay);
   raises [Failure] when exhausted. *)
let scripted answers =
  let remaining = ref answers in
  fun _ ->
    match !remaining with
    | [] -> failwith "scripted oracle exhausted"
    | a :: rest ->
        remaining := rest;
        a
