(** Synchronous BGP propagation to fixpoint: eBGP between ASes, iBGP
    full-mesh semantics within an AS.

    Each round every router advertises, for every prefix, its current
    best route to each neighbor through its export chain (prepending its
    ASN and rewriting the next hop); receivers run their import chain,
    drop loops, and re-select best paths. Rounds repeat until no RIB
    changes. Decision order: highest weight, highest local preference,
    shortest AS path, lowest origin (IGP < EGP < incomplete), lowest
    MED, lowest sender address. *)

type rib_entry = {
  route : Bgp.Route.t;
  learned_from : string option; (* None = locally originated *)
}

module Smap = Map.Make (String)
module Pmap = Map.Make (struct
  type t = Netaddr.Prefix.t

  let compare = Netaddr.Prefix.compare
end)

type state = {
  topology : Topology.t;
  ribs : rib_entry Pmap.t Smap.t; (* router -> prefix -> best *)
  rounds : int; (* rounds to convergence *)
  converged : bool;
}

let origin_rank = function
  | Bgp.Route.Igp -> 0
  | Bgp.Route.Egp -> 1
  | Bgp.Route.Incomplete -> 2

(* true when [a] is strictly preferred over [b]. *)
let better (a : rib_entry) (b : rib_entry) =
  let ra = a.route and rb = b.route in
  let cmp =
    List.find_opt
      (fun c -> c <> 0)
      [
        Int.compare rb.weight ra.weight;
        Int.compare rb.local_pref ra.local_pref;
        Int.compare (List.length ra.as_path) (List.length rb.as_path);
        Int.compare (origin_rank ra.origin) (origin_rank rb.origin);
        Int.compare ra.metric rb.metric;
        compare a.learned_from b.learned_from;
      ]
  in
  match cmp with Some c -> c < 0 | None -> false

let best_of candidates =
  List.fold_left
    (fun acc c ->
      match acc with
      | None -> Some c
      | Some b -> if better c b then Some c else Some b)
    None candidates

let initial_rib (r : Topology.router) =
  List.fold_left
    (fun acc p ->
      let route =
        Bgp.Route.make ~as_path:[] ~local_pref:100 ~next_hop:r.router_ip p
      in
      Pmap.add p { route; learned_from = None } acc)
    Pmap.empty r.originated

(* Advertise [entry] from [sender] to [receiver]: export chain, AS
   prepend, next-hop rewrite, then the receiver's import chain.

   A session between routers of the same ASN is iBGP: the AS path is
   not prepended, local preference is propagated, and (enforced by the
   caller) routes learned from an iBGP peer are not re-advertised to
   other iBGP peers — the classic full-mesh requirement. *)
let offer ~(sender : Topology.router) ~(receiver : Topology.router)
    ~(out : Topology.neighbor) entry =
  let ibgp = sender.Topology.asn = receiver.Topology.asn in
  let export_chain =
    List.filter_map (Config.Database.route_map sender.config) out.export
  in
  match
    Config.Semantics.eval_chain sender.config export_chain entry.route
  with
  | Config.Semantics.Reject -> None
  | Config.Semantics.Accept r -> (
      let sent =
        if ibgp then
          { r with Bgp.Route.next_hop = sender.router_ip; weight = 0 }
        else
          {
            (Bgp.Route.prepend_as_path r [ sender.asn ]) with
            Bgp.Route.next_hop = sender.router_ip;
            (* local pref and weight are not transitive across eBGP *)
            local_pref = 100;
            weight = 0;
          }
      in
      (* Loop prevention: receiver drops routes carrying its own ASN. *)
      if List.mem receiver.asn sent.Bgp.Route.as_path then None
      else
        let back =
          List.find_opt
            (fun (nb : Topology.neighbor) -> nb.peer = sender.name)
            receiver.neighbors
        in
        match back with
        | None -> None
        | Some inb -> (
            let import_chain =
              List.filter_map
                (Config.Database.route_map receiver.config)
                inb.import
            in
            match
              Config.Semantics.eval_chain receiver.config import_chain sent
            with
            | Config.Semantics.Reject -> None
            | Config.Semantics.Accept accepted ->
                Some { route = accepted; learned_from = Some sender.name }))

let default_max_rounds = 64

let run ?(max_rounds = default_max_rounds) (t : Topology.t) =
  let ribs =
    ref
      (List.fold_left
         (fun acc r -> Smap.add r.Topology.name (initial_rib r) acc)
         Smap.empty t.routers)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    let snapshot = !ribs in
    (* Collect every offer against the previous round's snapshot. *)
    let inbox : (string, rib_entry list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (sender : Topology.router) ->
        let rib = Smap.find sender.name snapshot in
        List.iter
          (fun (out : Topology.neighbor) ->
            let receiver = Topology.find t out.peer in
            let learned_via_ibgp entry =
              match entry.learned_from with
              | None -> false
              | Some l -> (Topology.find t l).Topology.asn = sender.Topology.asn
            in
            Pmap.iter
              (fun _ entry ->
                (* Split horizon: never back to the router we learned
                   from. Full-mesh rule: iBGP-learned routes are not
                   re-advertised to iBGP peers. *)
                if
                  entry.learned_from <> Some receiver.Topology.name
                  && not
                       (learned_via_ibgp entry
                       && sender.Topology.asn = receiver.Topology.asn)
                then
                  match offer ~sender ~receiver ~out entry with
                  | Some e ->
                      Hashtbl.replace inbox receiver.Topology.name
                        (e
                        ::
                        (match Hashtbl.find_opt inbox receiver.Topology.name with
                        | Some l -> l
                        | None -> []))
                  | None -> ())
              rib)
          sender.neighbors)
      t.routers;
    (* Rebuild each RIB: originated routes plus best of the offers. *)
    let next =
      List.fold_left
        (fun acc (r : Topology.router) ->
          let offers =
            match Hashtbl.find_opt inbox r.name with
            | Some l -> l
            | None -> []
          in
          let by_prefix =
            List.fold_left
              (fun m (e : rib_entry) ->
                let p = e.route.Bgp.Route.prefix in
                Pmap.update p
                  (function None -> Some [ e ] | Some l -> Some (e :: l))
                  m)
              Pmap.empty offers
          in
          let rib =
            Pmap.fold
              (fun p candidates acc ->
                match Pmap.find_opt p acc with
                | Some { learned_from = None; _ } ->
                    acc (* originated routes always win locally *)
                | _ -> (
                    match best_of candidates with
                    | Some b -> Pmap.add p b acc
                    | None -> acc))
              by_prefix (initial_rib r)
          in
          acc |> Smap.add r.name rib)
        Smap.empty t.routers
    in
    if not (Smap.equal (Pmap.equal ( = )) next snapshot) then changed := true;
    ribs := next
  done;
  { topology = t; ribs = !ribs; rounds = !rounds; converged = not !changed }

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let rib state router =
  match Smap.find_opt router state.ribs with
  | Some r -> Pmap.bindings r
  | None -> raise (Topology.Invalid_topology ("no router named " ^ router))

let lookup state ~router ~prefix =
  Option.bind (Smap.find_opt router state.ribs) (Pmap.find_opt prefix)

(** Does [router] have any route covering [prefix] (exact entry)? *)
let reaches state ~router ~prefix = lookup state ~router ~prefix <> None

let pp_rib fmt state router =
  List.iter
    (fun (p, e) ->
      Format.fprintf fmt "%-20s via %-8s path [%s] lp %d med %d@."
        (Netaddr.Prefix.to_string p)
        (match e.learned_from with Some n -> n | None -> "local")
        (String.concat " " (List.map string_of_int e.route.Bgp.Route.as_path))
        e.route.Bgp.Route.local_pref e.route.Bgp.Route.metric)
    (rib state router)
