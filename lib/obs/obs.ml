(* Process-global observability registry.

   Domain-safety contract (see DESIGN.md §Multicore and §13): metric
   registration and the span record path are guarded by a mutex, but
   the counter/histogram *recording* hot path is mutex-free. Every
   series owns one shard per domain that ever touched it (allocated via
   [Domain.DLS] on first touch, linked into the series under the
   registry mutex), so an increment is a plain field update on memory
   no other domain writes. Reads ([value], [Snapshot.capture]) merge
   the shards lazily; merging a shard owned by a still-running domain
   is a racy-but-memory-safe int read, so live snapshots (the /metrics
   endpoint) see slightly stale values, while post-join snapshots (the
   bench/eval path, which joins worker domains first) are exact. *)

(* ------------------------------------------------------------------ *)
(* State and lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false

(* Guards the metric registries (Hashtbl add/iterate, shard lists) and
   the span record path (buffer, sequence counter, sink forwarding).
   Never held while user code runs, and never on the increment path. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Wall-clock, not [Sys.time]: span latencies must include time spent
   blocked on IO or sleeping, which CPU time would hide. *)
let clock = ref Unix.gettimeofday
let state_subscribers : (bool -> unit) list ref = ref []

let enabled () = !enabled_flag

let subscribe_state f =
  state_subscribers := f :: !state_subscribers;
  f !enabled_flag

let set_state b =
  if !enabled_flag <> b then begin
    enabled_flag := b;
    List.iter (fun f -> f b) !state_subscribers
  end

let enable () = set_state true
let disable () = set_state false
let set_clock c = clock := c
let now () = !clock ()

(* Origin for span start offsets: trace exporters want begin timestamps
   relative to a session origin, not absolute wall time. Re-anchored on
   every [reset] so back-to-back runs start from zero. *)
let origin = ref (Unix.gettimeofday ())

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

(* Metric dimensions (router, policy, query kind, fault class, ...).
   A labeled metric is registered under its full name,
   [name{k="v",k2="v2"}] with keys sorted, so the unlabeled API is
   exactly the zero-label case and every existing consumer (snapshots,
   reports, the bench diff) sees labeled series as ordinary metrics
   with a richer name. *)
module Labels = struct
  type t = (string * string) list (* sorted by key *)

  let canon kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

  let escape v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let encode = function
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) kvs)
        ^ "}"

  (* Canonicalize here too, so a name rebuilt from an unsorted label
     list still matches the registered series. *)
  let full_name name kvs = name ^ encode (canon kvs)

  (* Inverse of {!full_name} on well-formed names. A name that does not
     parse (no closing brace, bad pair syntax) is treated as label-free
     so exposition never drops a series. *)
  let parse full =
    match String.index_opt full '{' with
    | None -> (full, [])
    | Some i -> (
        let n = String.length full in
        if n = 0 || full.[n - 1] <> '}' then (full, [])
        else
          let base = String.sub full 0 i in
          let buf = Buffer.create 16 in
          let labels = ref [] in
          let rec pair j =
            match String.index_from_opt full j '=' with
            | None -> raise Exit
            | Some eq ->
                if eq >= n - 1 || full.[eq + 1] <> '"' then raise Exit;
                let k = String.sub full j (eq - j) in
                Buffer.clear buf;
                value k (eq + 2)
          and value k j =
            if j >= n then raise Exit
            else
              match full.[j] with
              | '\\' when j + 1 < n ->
                  Buffer.add_char buf full.[j + 1];
                  value k (j + 2)
              | '"' ->
                  labels := (k, Buffer.contents buf) :: !labels;
                  next (j + 1)
              | c ->
                  Buffer.add_char buf c;
                  value k (j + 1)
          and next j =
            if j = n - 1 && full.[j] = '}' then ()
            else if j < n - 1 && full.[j] = ',' then pair (j + 1)
            else raise Exit
          in
          match pair (i + 1) with
          | () -> (base, List.rev !labels)
          | exception Exit -> (full, []))
end

(* ------------------------------------------------------------------ *)
(* Cardinality guard                                                  *)
(* ------------------------------------------------------------------ *)

(* Labels are data-driven (router names, fault classes); at fleet scale
   an unbounded label space would grow the registry without limit.
   Each base name may register at most [series_limit] labeled series;
   further label sets collapse into one [{overflow="true"}] sink series
   per base, so totals stay correct and the overflow is visible in
   every snapshot and scrape. *)
let overflow_labels = [ ("overflow", "true") ]

let series_limit_ref =
  ref
    (match Sys.getenv_opt "CLARIFY_OBS_SERIES_LIMIT" with
    | None -> 256
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> 256))

let series_limit () = !series_limit_ref
let set_series_limit n = series_limit_ref := max 1 n

(* Must be called with [registry_mutex] held. Decides the label set a
   new registration is stored under, charging genuine label sets
   against the per-base budget; the sink itself is exempt. *)
let resolve_labels ~counts base labels =
  if labels = [] || labels = overflow_labels then labels
  else
    let used = Option.value ~default:0 (Hashtbl.find_opt counts base) in
    if used >= !series_limit_ref then overflow_labels
    else begin
      Hashtbl.replace counts base (used + 1);
      labels
    end

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  (* One shard per (series, domain): only its owning domain ever
     writes it, so [incr] is a race-free field update with no lock. *)
  type shard = { mutable v : int }

  type t = {
    name : string; (* full name, labels encoded *)
    base : string;
    labels : Labels.t;
    help : string;
    shards : shard list ref; (* appended under the registry mutex *)
    key : shard Domain.DLS.key;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64
  let labeled_bases : (string, int) Hashtbl.t = Hashtbl.create 16

  let new_series ~help ~base ~name labels =
    let shards = ref [] in
    let key =
      (* The init closure runs on the first [Domain.DLS.get] in each
         domain — i.e. on an increment path, never while the registry
         mutex is held — and links the fresh shard into the series. *)
      Domain.DLS.new_key (fun () ->
          let s = { v = 0 } in
          locked (fun () -> shards := s :: !shards);
          s)
    in
    { name; base; labels; help; shards; key }

  let labeled ?(help = "") base kvs =
    let labels = Labels.canon kvs in
    locked (fun () ->
        match Hashtbl.find_opt registry (Labels.full_name base labels) with
        | Some c -> c
        | None -> (
            let labels = resolve_labels ~counts:labeled_bases base labels in
            let name = Labels.full_name base labels in
            match Hashtbl.find_opt registry name with
            | Some c -> c (* the overflow sink, or a racing registration *)
            | None ->
                let c = new_series ~help ~base ~name labels in
                Hashtbl.add registry name c;
                c))

  let make ?help name = labeled ?help name []

  let incr ?(by = 1) c =
    if !enabled_flag then begin
      let s = Domain.DLS.get c.key in
      s.v <- s.v + by
    end

  let value c = List.fold_left (fun acc (s : shard) -> acc + s.v) 0 !(c.shards)
  let name c = c.name
  let base_name c = c.base
  let labels c = c.labels
  let find name = locked (fun () -> Hashtbl.find_opt registry name)

  let find_labeled base kvs =
    locked (fun () ->
        Hashtbl.find_opt registry (Labels.full_name base (Labels.canon kvs)))

  let all () =
    locked (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) registry [])
    |> List.sort (fun a b -> String.compare a.name b.name)

  (* Zero the statically declared (zero-label) series, whose handles
     live in module bodies across resets, and drop the dynamically
     created labeled series outright: their cardinality is data-driven
     (per router, per fault class), so keeping dead registrations would
     leak across runs. Shards of kept series stay linked (their owning
     domains may still hold the DLS slot) and are zeroed in place. *)
  let reset () =
    locked (fun () ->
        Hashtbl.filter_map_inplace
          (fun _ c ->
            if c.labels = [] then begin
              List.iter (fun (s : shard) -> s.v <- 0) !(c.shards);
              Some c
            end
            else None)
          registry;
        Hashtbl.reset labeled_bases)
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Upper bounds in ns: 1us .. 10s, then +inf as the overflow bucket. *)
  let bounds =
    [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10; infinity |]

  (* Per-domain shard, like {!Counter.shard}. [fstats] packs sum and
     max into a flat float array so an observation never boxes a float
     (a mutable float field in an int-carrying record would). *)
  type shard = {
    counts : int array; (* one slot per bound *)
    mutable count : int;
    fstats : float array; (* [| sum_ns; max_ns |] *)
  }

  type t = {
    name : string; (* full name, labels encoded *)
    base : string;
    labels : Labels.t;
    help : string;
    shards : shard list ref;
    key : shard Domain.DLS.key;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64
  let labeled_bases : (string, int) Hashtbl.t = Hashtbl.create 16

  let new_series ~help ~base ~name labels =
    let shards = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let s =
            {
              counts = Array.make (Array.length bounds) 0;
              count = 0;
              fstats = [| 0.; 0. |];
            }
          in
          locked (fun () -> shards := s :: !shards);
          s)
    in
    { name; base; labels; help; shards; key }

  let labeled ?(help = "") base kvs =
    let labels = Labels.canon kvs in
    locked (fun () ->
        match Hashtbl.find_opt registry (Labels.full_name base labels) with
        | Some h -> h
        | None -> (
            let labels = resolve_labels ~counts:labeled_bases base labels in
            let name = Labels.full_name base labels in
            match Hashtbl.find_opt registry name with
            | Some h -> h
            | None ->
                let h = new_series ~help ~base ~name labels in
                Hashtbl.add registry name h;
                h))

  let make ?help name = labeled ?help name []

  let slot ns =
    let rec go i = if ns <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe_ns h ns =
    if !enabled_flag then begin
      let ns = if ns < 0. then 0. else ns in
      let s = Domain.DLS.get h.key in
      let i = slot ns in
      s.counts.(i) <- s.counts.(i) + 1;
      s.count <- s.count + 1;
      s.fstats.(0) <- s.fstats.(0) +. ns;
      if ns > s.fstats.(1) then s.fstats.(1) <- ns
    end

  let count h = List.fold_left (fun acc s -> acc + s.count) 0 !(h.shards)

  let sum_ns h =
    List.fold_left (fun acc s -> acc +. s.fstats.(0)) 0. !(h.shards)

  let max_ns h =
    List.fold_left (fun acc s -> Float.max acc s.fstats.(1)) 0. !(h.shards)

  let merged_counts h =
    let m = Array.make (Array.length bounds) 0 in
    List.iter
      (fun s -> Array.iteri (fun i c -> m.(i) <- m.(i) + c) s.counts)
      !(h.shards);
    m

  let buckets h =
    let counts = merged_counts h in
    let cum = ref 0 in
    Array.to_list
      (Array.mapi
         (fun i b ->
           cum := !cum + counts.(i);
           (b, !cum))
         bounds)

  let name h = h.name
  let base_name h = h.base
  let labels h = h.labels
  let find name = locked (fun () -> Hashtbl.find_opt registry name)

  let find_labeled base kvs =
    locked (fun () ->
        Hashtbl.find_opt registry (Labels.full_name base (Labels.canon kvs)))

  let all () =
    locked (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) registry [])
    |> List.sort (fun a b -> String.compare a.name b.name)

  (* Same policy as {!Counter.reset}: zero the zero-label series, drop
     the data-driven labeled ones. *)
  let reset () =
    locked (fun () ->
        Hashtbl.filter_map_inplace
          (fun _ h ->
            if h.labels = [] then begin
              List.iter
                (fun s ->
                  Array.fill s.counts 0 (Array.length s.counts) 0;
                  s.count <- 0;
                  s.fstats.(0) <- 0.;
                  s.fstats.(1) <- 0.)
                !(h.shards);
              Some h
            end
            else None)
          registry;
        Hashtbl.reset labeled_bases)
end

(* ------------------------------------------------------------------ *)
(* Gauges                                                             *)
(* ------------------------------------------------------------------ *)

module Gauge = struct
  (* A point-in-time sample: either pushed with [set] or pulled from a
     collector closure at read time. Gauges are not sharded — sets are
     rare (batch boundaries, not per-task), and last-writer-wins is the
     natural gauge semantics. *)
  type t = {
    name : string; (* full name, labels encoded *)
    base : string;
    labels : Labels.t;
    help : string;
    mutable value : float;
    mutable collect : (unit -> float) option;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let labeled_bases : (string, int) Hashtbl.t = Hashtbl.create 16

  let labeled ?(help = "") base kvs =
    let labels = Labels.canon kvs in
    locked (fun () ->
        match Hashtbl.find_opt registry (Labels.full_name base labels) with
        | Some g -> g
        | None -> (
            let labels = resolve_labels ~counts:labeled_bases base labels in
            let name = Labels.full_name base labels in
            match Hashtbl.find_opt registry name with
            | Some g -> g
            | None ->
                let g =
                  { name; base; labels; help; value = 0.; collect = None }
                in
                Hashtbl.add registry name g;
                g))

  let make ?help name = labeled ?help name []

  let collector ?help name f =
    let g = make ?help name in
    g.collect <- Some f;
    g

  let set g v = if !enabled_flag then g.value <- v

  (* Collectors are sampled on every read (a failing collector keeps
     the last good sample); pushed gauges just return the cell. *)
  let value g =
    match g.collect with
    | None -> g.value
    | Some f -> (
        match f () with
        | v ->
            g.value <- v;
            v
        | exception _ -> g.value)

  let name g = g.name
  let base_name g = g.base
  let labels g = g.labels
  let find name = locked (fun () -> Hashtbl.find_opt registry name)

  let find_labeled base kvs =
    locked (fun () ->
        Hashtbl.find_opt registry (Labels.full_name base (Labels.canon kvs)))

  let all () =
    locked (fun () -> Hashtbl.fold (fun _ g acc -> g :: acc) registry [])
    |> List.sort (fun a b -> String.compare a.name b.name)

  let sample_all () = List.map (fun g -> (g.name, value g)) (all ())

  (* Pushed zero-label gauges return to 0; collectors keep collecting
     (their value is ambient process state, not run state). Labeled
     gauges are data-driven and dropped, like labeled counters. *)
  let reset () =
    locked (fun () ->
        Hashtbl.filter_map_inplace
          (fun _ g ->
            if g.labels = [] then begin
              if g.collect = None then g.value <- 0.;
              Some g
            end
            else None)
          registry;
        Hashtbl.reset labeled_bases)
end

(* Built-in runtime collectors: GC pressure for the whole process.
   [Gc.quick_stat] reads cached counters without forcing a collection,
   so sampling these on every scrape is safe during a run. *)
let () =
  let qs f () = f (Gc.quick_stat ()) in
  ignore
    (Gauge.collector "runtime.gc.minor_collections"
       ~help:"minor GC collections since program start"
       (qs (fun s -> float_of_int s.Gc.minor_collections)));
  ignore
    (Gauge.collector "runtime.gc.major_collections"
       ~help:"major GC collections since program start"
       (qs (fun s -> float_of_int s.Gc.major_collections)));
  ignore
    (Gauge.collector "runtime.gc.heap_words"
       ~help:"major heap size in words"
       (qs (fun s -> float_of_int s.Gc.heap_words)));
  ignore
    (Gauge.collector "runtime.gc.live_words"
       ~help:"live words in the major heap at the last GC slice"
       (qs (fun s -> float_of_int s.Gc.live_words)))

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type t = {
    path : string;
    depth : int;
    start_ns : float; (* offset from the origin of the current reset *)
    duration_ns : float;
    seq : int;
  }
end

type sink = { on_span : Span.t -> unit }

let silent = { on_span = (fun _ -> ()) }

let tee a b =
  {
    on_span =
      (fun s ->
        a.on_span s;
        b.on_span s);
  }

let pp_duration fmt ns =
  if ns >= 1e9 then Format.fprintf fmt "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf fmt "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf fmt "%.2f us" (ns /. 1e3)
  else Format.fprintf fmt "%.0f ns" ns

let text_sink fmt =
  {
    on_span =
      (fun (s : Span.t) ->
        Format.fprintf fmt "[trace] %*s%s %a@." (2 * s.depth) "" s.path
          pp_duration s.duration_ns);
  }

let span_to_json (s : Span.t) =
  Json.Obj
    [
      ("path", Json.String s.path);
      ("depth", Json.Int s.depth);
      ("start_ns", Json.Float s.start_ns);
      ("duration_ns", Json.Float s.duration_ns);
      ("seq", Json.Int s.seq);
    ]

let json_sink buf =
  {
    on_span =
      (fun (s : Span.t) ->
        Buffer.add_string buf (Json.to_string ~indent:0 (span_to_json s));
        Buffer.add_char buf '\n');
  }

let jsonl_sink oc =
  {
    on_span =
      (fun (s : Span.t) ->
        output_string oc (Json.to_string ~indent:0 (span_to_json s));
        output_char oc '\n';
        flush oc);
  }

let current_sink = ref silent
let set_sink s = current_sink := s
let add_sink s = current_sink := tee !current_sink s

let max_recorded_spans = 16_384
let recorded : Span.t list ref = ref [] (* newest first *)
let recorded_len = ref 0
let dropped = ref 0
let next_seq = ref 0

(* Stack of open spans: (path, start seconds). Domain-local, so each
   worker domain nests its own spans without seeing (or corrupting)
   another domain's open stack; worker roots become separate thread
   lanes in the Chrome-trace export. *)
let stack_key : (string * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let current_path () = match !(stack ()) with [] -> "" | (p, _) :: _ -> p

(* The buffer, the sequence counter and the sink are shared across
   domains; serialize completions so concurrent workers never corrupt
   them. Completion (seq) order between domains is scheduling-
   dependent; within one domain it stays close order. *)
let record (s : Span.t) =
  locked (fun () ->
      let s =
        if !recorded_len < max_recorded_spans then begin
          let s = { s with Span.seq = !next_seq } in
          incr next_seq;
          recorded := s :: !recorded;
          incr recorded_len;
          s
        end
        else begin
          let s = { s with Span.seq = !next_seq } in
          incr next_seq;
          incr dropped;
          s
        end
      in
      !current_sink.on_span s)

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let stack = stack () in
    let path =
      match !stack with [] -> name | (parent, _) :: _ -> parent ^ "." ^ name
    in
    let depth = List.length !stack in
    stack := (path, !clock ()) :: !stack;
    let finish () =
      match !stack with
      | (p, t0) :: rest when p == path ->
          stack := rest;
          let duration_ns = (!clock () -. t0) *. 1e9 in
          let duration_ns = if duration_ns < 0. then 0. else duration_ns in
          let start_ns = (t0 -. !origin) *. 1e9 in
          let start_ns = if start_ns < 0. then 0. else start_ns in
          Histogram.observe_ns (Histogram.make path) duration_ns;
          record { Span.path; depth; start_ns; duration_ns; seq = 0 }
      | _ -> () (* disabled or reset mid-span: drop silently *)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let spans () = locked (fun () -> List.rev !recorded)
let dropped_spans () = locked (fun () -> !dropped)

(* Clears *every* piece of mutable state this module accumulates —
   counters, histograms and gauges (labeled series dropped entirely),
   the span buffer and its overflow count, the span sequence counter,
   the open-span stack, and the start-offset origin — so two
   back-to-back identical runs produce identical snapshots (under a
   deterministic clock). Sinks, subscribers, collectors and the
   enabled state are configuration, not run state, and are kept. *)
let reset () =
  Counter.reset ();
  Histogram.reset ();
  Gauge.reset ();
  locked (fun () ->
      recorded := [];
      recorded_len := 0;
      dropped := 0;
      next_seq := 0);
  stack () := [];
  origin := !clock ()

(* ------------------------------------------------------------------ *)
(* Help index                                                         *)
(* ------------------------------------------------------------------ *)

(* Base name -> help text over every registered metric family, for
   exposition ([# HELP] lines). First registration wins per base. *)
let help_index () =
  let tbl = Hashtbl.create 32 in
  let remember base help =
    if help <> "" && not (Hashtbl.mem tbl base) then Hashtbl.add tbl base help
  in
  List.iter (fun (c : Counter.t) -> remember c.Counter.base c.Counter.help)
    (Counter.all ());
  List.iter (fun (g : Gauge.t) -> remember g.Gauge.base g.Gauge.help)
    (Gauge.all ());
  List.iter (fun (h : Histogram.t) -> remember h.Histogram.base h.Histogram.help)
    (Histogram.all ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let pp_report fmt () =
  let counters = List.filter (fun c -> Counter.value c > 0) (Counter.all ()) in
  let hists = List.filter (fun h -> Histogram.count h > 0) (Histogram.all ()) in
  Format.fprintf fmt "@[<v>=== Observability snapshot ===@,";
  if counters = [] && hists = [] then
    Format.fprintf fmt "(no events recorded; is the layer enabled?)@,"
  else begin
    if counters <> [] then begin
      Format.fprintf fmt "counters:@,";
      List.iter
        (fun c ->
          Format.fprintf fmt "  %-48s %10d@," (Counter.name c)
            (Counter.value c))
        counters
    end;
    (match Gauge.sample_all () with
    | [] -> ()
    | gauges ->
        Format.fprintf fmt "gauges:@,";
        List.iter
          (fun (n, v) ->
            if Float.is_integer v && Float.abs v < 1e15 then
              Format.fprintf fmt "  %-48s %10.0f@," n v
            else Format.fprintf fmt "  %-48s %10.2f@," n v)
          gauges);
    if hists <> [] then begin
      Format.fprintf fmt "latencies (per span path):@,";
      List.iter
        (fun h ->
          let n = Histogram.count h in
          let mean = Histogram.sum_ns h /. float_of_int n in
          Format.fprintf fmt "  %-48s n=%-6d total=%a mean=%a max=%a@,"
            (Histogram.name h) n pp_duration (Histogram.sum_ns h) pp_duration
            mean pp_duration (Histogram.max_ns h))
        hists
    end;
    if !dropped > 0 then
      Format.fprintf fmt "(%d spans dropped beyond the %d-span buffer)@,"
        !dropped max_recorded_spans
  end;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type hist = {
    count : int;
    sum_ns : float;
    max_ns : float;
    buckets : (float * int) list; (* (upper_bound_ns, cumulative) *)
  }

  type t = {
    counters : (string * int) list; (* sorted by name, non-zero only *)
    gauges : (string * float) list; (* sorted by name, every series *)
    histograms : (string * hist) list;
  }

  let capture () =
    let counters =
      List.filter_map
        (fun c ->
          if Counter.value c = 0 then None
          else Some (Counter.name c, Counter.value c))
        (Counter.all ())
    in
    let gauges = Gauge.sample_all () in
    let histograms =
      List.filter_map
        (fun h ->
          if Histogram.count h = 0 then None
          else
            Some
              ( Histogram.name h,
                {
                  count = Histogram.count h;
                  sum_ns = Histogram.sum_ns h;
                  max_ns = Histogram.max_ns h;
                  buckets = Histogram.buckets h;
                } ))
        (Histogram.all ())
    in
    { counters; gauges; histograms }

  let take = capture

  let mean_ns (h : hist) =
    if h.count = 0 then 0. else h.sum_ns /. float_of_int h.count

  (* Gauges are point-in-time samples (GC state, pool occupancy) and
     deliberately excluded: equality is the determinism check used by
     the serial-vs-parallel gates, which gauges would always fail. *)
  let equal a b =
    a.counters = b.counters
    && List.length a.histograms = List.length b.histograms
    && List.for_all2
         (fun (na, ha) (nb, hb) ->
           na = nb && ha.count = hb.count && ha.sum_ns = hb.sum_ns
           && ha.max_ns = hb.max_ns && ha.buckets = hb.buckets)
         a.histograms b.histograms

  (* Bucket bounds: infinity is not valid JSON, so the overflow bound is
     encoded as the string "inf". *)
  let bound_to_json b =
    if b = infinity then Json.String "inf" else Json.Float b

  let bound_of_json = function
    | Json.String "inf" -> Some infinity
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None

  let to_json t =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) t.counters) );
        ( "gauges",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) t.gauges) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, h) ->
                 ( n,
                   Json.Obj
                     [
                       ("count", Json.Int h.count);
                       ("sum_ns", Json.Float h.sum_ns);
                       ("max_ns", Json.Float h.max_ns);
                       ( "buckets",
                         Json.List
                           (List.map
                              (fun (b, c) ->
                                Json.List [ bound_to_json b; Json.Int c ])
                              h.buckets) );
                     ] ))
               t.histograms) );
      ]

  let of_json j =
    let ( let* ) r f = Result.bind r f in
    let obj_fields name =
      match Json.member name j with
      | Some (Json.Obj fields) -> Ok fields
      | Some _ -> Error (Printf.sprintf "snapshot: %S is not an object" name)
      | None -> Error (Printf.sprintf "snapshot: missing %S" name)
    in
    let num = function
      | Json.Float f -> Some f
      | Json.Int i -> Some (float_of_int i)
      | _ -> None
    in
    let* counter_fields = obj_fields "counters" in
    let* counters =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match Json.to_int v with
          | Some i -> Ok ((n, i) :: acc)
          | None -> Error (Printf.sprintf "snapshot: counter %S not an int" n))
        (Ok []) counter_fields
    in
    (* Absent in snapshots written before gauges existed. *)
    let* gauges =
      match Json.member "gauges" j with
      | None -> Ok []
      | Some (Json.Obj fields) ->
          List.fold_left
            (fun acc (n, v) ->
              let* acc = acc in
              match num v with
              | Some f -> Ok ((n, f) :: acc)
              | None ->
                  Error (Printf.sprintf "snapshot: gauge %S not a number" n))
            (Ok []) fields
          |> Result.map List.rev
      | Some _ -> Error "snapshot: \"gauges\" is not an object"
    in
    let* hist_fields = obj_fields "histograms" in
    let hist_of_json n hj =
      let get name = Json.member name hj in
      let* count =
        match Option.bind (get "count") Json.to_int with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "snapshot: histogram %S: bad count" n)
      in
      let fnum name =
        match Option.bind (get name) num with
        | Some f -> Ok f
        | None ->
            Error (Printf.sprintf "snapshot: histogram %S: bad %s" n name)
      in
      let* sum_ns = fnum "sum_ns" in
      let* max_ns = fnum "max_ns" in
      let* buckets =
        match Option.bind (get "buckets") Json.to_list with
        | None -> Error (Printf.sprintf "snapshot: histogram %S: no buckets" n)
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Json.List [ b; c ] -> (
                    match (bound_of_json b, Json.to_int c) with
                    | Some b, Some c -> Ok ((b, c) :: acc)
                    | _ ->
                        Error
                          (Printf.sprintf "snapshot: histogram %S: bad bucket"
                             n))
                | _ ->
                    Error
                      (Printf.sprintf "snapshot: histogram %S: bad bucket" n))
              (Ok []) items
            |> Result.map List.rev
      in
      Ok { count; sum_ns; max_ns; buckets }
    in
    let* histograms =
      List.fold_left
        (fun acc (n, hj) ->
          let* acc = acc in
          let* h = hist_of_json n hj in
          Ok ((n, h) :: acc))
        (Ok []) hist_fields
    in
    Ok
      {
        counters = List.rev counters;
        gauges;
        histograms = List.rev histograms;
      }

  (* ---------------------------------------------------------------- *)
  (* Prometheus / OpenMetrics text exposition                         *)
  (* ---------------------------------------------------------------- *)

  let prom_metric_name base =
    "clarify_"
    ^ String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
          | _ -> '_')
        base

  (* Label values escape backslash, double quote and newline; help text
     escapes backslash and newline (Prometheus text format rules). *)
  let prom_escape ~quote s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '"' when quote -> Buffer.add_string buf "\\\""
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let prom_number v =
    if v <> v then "NaN"
    else if v = infinity then "+Inf"
    else if v = neg_infinity then "-Inf"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else
      let s = Printf.sprintf "%.12g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v

  (* Group a full-name-sorted series list into families: bases sorted,
     series inside a family kept in full-name order (deterministic). *)
  let families series =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (full, v) ->
        let base, labels = Labels.parse full in
        (match Hashtbl.find_opt tbl base with
        | None ->
            order := base :: !order;
            Hashtbl.add tbl base [ (labels, v) ]
        | Some prev -> Hashtbl.replace tbl base ((labels, v) :: prev)))
      series;
    List.sort String.compare !order
    |> List.map (fun base -> (base, List.rev (Hashtbl.find tbl base)))

  let to_prometheus ?(help = []) t =
    let buf = Buffer.create 4096 in
    let label_block kvs =
      match kvs with
      | [] -> ""
      | kvs ->
          "{"
          ^ String.concat ","
              (List.map
                 (fun (k, v) -> k ^ "=\"" ^ prom_escape ~quote:true v ^ "\"")
                 kvs)
          ^ "}"
    in
    let header ~typ ~family base =
      (match List.assoc_opt base help with
      | Some h when h <> "" ->
          Buffer.add_string buf
            ("# HELP " ^ family ^ " " ^ prom_escape ~quote:false h ^ "\n")
      | _ -> ());
      Buffer.add_string buf ("# TYPE " ^ family ^ " " ^ typ ^ "\n")
    in
    List.iter
      (fun (base, series) ->
        let family = prom_metric_name base ^ "_total" in
        header ~typ:"counter" ~family base;
        List.iter
          (fun (labels, v) ->
            Buffer.add_string buf
              (family ^ label_block labels ^ " " ^ string_of_int v ^ "\n"))
          series)
      (families t.counters);
    List.iter
      (fun (base, series) ->
        let family = prom_metric_name base in
        header ~typ:"gauge" ~family base;
        List.iter
          (fun (labels, v) ->
            Buffer.add_string buf
              (family ^ label_block labels ^ " " ^ prom_number v ^ "\n"))
          series)
      (families t.gauges);
    List.iter
      (fun (base, series) ->
        let family = prom_metric_name base in
        header ~typ:"histogram" ~family base;
        List.iter
          (fun (labels, (h : hist)) ->
            List.iter
              (fun (b, cum) ->
                Buffer.add_string buf
                  (family ^ "_bucket"
                  ^ label_block (labels @ [ ("le", prom_number b) ])
                  ^ " " ^ string_of_int cum ^ "\n"))
              h.buckets;
            Buffer.add_string buf
              (family ^ "_sum" ^ label_block labels ^ " "
             ^ prom_number h.sum_ns ^ "\n");
            Buffer.add_string buf
              (family ^ "_count" ^ label_block labels ^ " "
             ^ string_of_int h.count ^ "\n"))
          series)
      (families t.histograms);
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf
end

let to_json () =
  let counters =
    List.filter_map
      (fun c ->
        if Counter.value c = 0 then None
        else Some (Counter.name c, Json.Int (Counter.value c)))
      (Counter.all ())
  in
  let gauges =
    List.map (fun (n, v) -> (n, Json.Float v)) (Gauge.sample_all ())
  in
  let histograms =
    List.filter_map
      (fun h ->
        if Histogram.count h = 0 then None
        else
          Some
            ( Histogram.name h,
              Json.Obj
                [
                  ("count", Json.Int (Histogram.count h));
                  ("sum_ns", Json.Float (Histogram.sum_ns h));
                  ("max_ns", Json.Float (Histogram.max_ns h));
                  ( "buckets",
                    Json.List
                      (List.filter_map
                         (fun (b, c) ->
                           if b = infinity then
                             Some (Json.List [ Json.String "inf"; Json.Int c ])
                           else Some (Json.List [ Json.Float b; Json.Int c ]))
                         (Histogram.buckets h)) );
                ] ))
      (Histogram.all ())
  in
  let spans = List.map span_to_json (spans ()) in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
      ("spans", Json.List spans);
    ]
