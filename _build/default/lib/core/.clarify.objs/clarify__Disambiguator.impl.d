lib/core/disambiguator.ml: Array Bgp Config Engine Format Fun List
