lib/config/prefix_list.ml: Action Format Int List Netaddr Option Printf
