(** Cisco [ip as-path access-list] definitions: first-match permit/deny
    entries over AS-path regexes. *)

type entry = { action : Action.t; regex : Sre.As_path_regex.t }
type t = { name : string; entries : entry list }

val make : string -> (Action.t * string) list -> t
(** Compiles each regex source.
    @raise Sre.As_path_regex.Parse_error on malformed regexes. *)

val eval : t -> int list -> Action.t option
(** First matching entry's action on the given AS path. *)

val matches : t -> int list -> bool
(** [eval] returned [Some Permit]. *)

val permitted_regexes : t -> Sre.As_path_regex.t list
val rename : t -> string -> t
val pp : Format.formatter -> t -> unit
