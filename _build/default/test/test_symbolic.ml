open Config
module Ps = Symbolic.Packet_space
module Ctx = Symbolic.Route_ctx
open Symbdd

let check = Alcotest.(check bool)
let pfx = Netaddr.Prefix.of_string_exn
let comm = Bgp.Community.of_string_exn

let parse_ok src =
  match Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

(* ------------------------------------------------------------------ *)
(* Packet space                                                       *)
(* ------------------------------------------------------------------ *)

let env_of_packet (p : Packet.t) v =
  let field bv value =
    let vars = Symbdd.Bvec.vars bv in
    let rec idx i = function
      | [] -> None
      | x :: rest -> if x = v then Some i else idx (i + 1) rest
    in
    Option.map
      (fun i -> value land (1 lsl (List.length vars - 1 - i)) <> 0)
      (idx 0 vars)
  in
  match
    List.find_map Fun.id
      [
        field Ps.src (Netaddr.Ipv4.to_int p.src);
        field Ps.dst (Netaddr.Ipv4.to_int p.dst);
        field Ps.protocol (Packet.protocol_number p.protocol);
        field Ps.src_port p.src_port;
        field Ps.dst_port p.dst_port;
      ]
  with
  | Some b -> b
  | None -> if v = Ps.established_var then p.established else false

(* Reuse the generators from the config tests by redefining small ones. *)
let gen_action = QCheck.Gen.oneofl [ Action.Permit; Action.Deny ]

let gen_acl_rule =
  QCheck.Gen.(
    let gen_addr =
      oneof
        [
          return Acl.Any;
          map (fun n -> Acl.Host (Netaddr.Ipv4.of_int n)) (int_range 0 0xffffffff);
          map2
            (fun n len ->
              Acl.addr_of_prefix (Netaddr.Prefix.make (Netaddr.Ipv4.of_int n) len))
            (int_range 0 0xffffffff) (int_range 1 31);
          (* Discontiguous wildcard masks too. *)
          map2
            (fun n w -> Acl.Wildcard (Netaddr.Ipv4.of_int n, Netaddr.Ipv4.of_int w))
            (int_range 0 0xffffffff) (int_range 0 0xffffffff);
        ]
    in
    let gen_port =
      oneof
        [
          return Acl.Any_port;
          map (fun p -> Acl.Eq p) (int_range 0 65535);
          map (fun p -> Acl.Neq p) (int_range 0 65535);
          map (fun p -> Acl.Gt p) (int_range 0 65535);
          map (fun p -> Acl.Lt p) (int_range 0 65535);
          map2 (fun a b -> Acl.Range (min a b, max a b)) (int_range 0 65535)
            (int_range 0 65535);
        ]
    in
    gen_action >>= fun action ->
    oneofl [ Packet.Ip; Packet.Tcp; Packet.Udp; Packet.Icmp ] >>= fun protocol ->
    gen_addr >>= fun src ->
    gen_addr >>= fun dst ->
    (if Packet.has_ports protocol then pair gen_port gen_port
     else return (Acl.Any_port, Acl.Any_port))
    >>= fun (src_port, dst_port) ->
    (if protocol = Packet.Tcp then bool else return false)
    >>= fun established ->
    return (Acl.rule ~protocol ~src ~src_port ~dst ~dst_port ~established action))

let gen_acl =
  QCheck.Gen.(
    map (fun rules -> Acl.resequence (Acl.make "GEN" rules))
      (list_size (int_range 1 8) gen_acl_rule))

let gen_packet =
  QCheck.Gen.(
    int_range 0 0xffffffff >>= fun src ->
    int_range 0 0xffffffff >>= fun dst ->
    oneofl [ Packet.Tcp; Packet.Udp; Packet.Icmp; Packet.Proto 89 ]
    >>= fun protocol ->
    int_range 0 65535 >>= fun src_port ->
    (* Bias toward interesting ports. *)
    oneof [ int_range 0 65535; oneofl [ 80; 443; 22; 100; 200 ] ]
    >>= fun dst_port ->
    bool >>= fun established ->
    return
      (Packet.make ~protocol ~src_port ~dst_port
         ~established:(established && protocol = Packet.Tcp)
         ~src:(Netaddr.Ipv4.of_int src) ~dst:(Netaddr.Ipv4.of_int dst) ()))

let arb_acl_packet =
  QCheck.make
    ~print:(fun (a, p) ->
      Format.asprintf "%a@ %a" Acl.pp a Packet.pp p)
    QCheck.Gen.(pair gen_acl gen_packet)

let prop_rule_bdd_matches =
  QCheck.Test.make ~name:"rule BDD agrees with concrete rule match" ~count:1000
    arb_acl_packet
    (fun (acl, p) ->
      List.for_all
        (fun r -> Bdd.eval (env_of_packet p) (Ps.of_rule r) = Acl.match_rule r p)
        acl.Acl.rules)

let prop_exec_partition =
  QCheck.Test.make ~name:"exec cells partition the packet space" ~count:200
    (QCheck.make ~print:(Format.asprintf "%a" Acl.pp) gen_acl)
    (fun acl ->
      let cells = Ps.exec acl in
      (* Pairwise disjoint and jointly exhaustive. *)
      let rec pairwise = function
        | [] -> true
        | (c : Ps.cell) :: rest ->
            List.for_all
              (fun (c' : Ps.cell) -> Bdd.is_zero (Bdd.conj c.guard c'.guard))
              rest
            && pairwise rest
      in
      pairwise cells
      && Bdd.is_one (Bdd.disj_list (List.map (fun (c : Ps.cell) -> c.guard) cells)))

let prop_exec_agrees_with_eval =
  QCheck.Test.make ~name:"symbolic ACL cell = concrete first match" ~count:1000
    arb_acl_packet
    (fun (acl, p) ->
      let cells = Ps.exec acl in
      let cell =
        List.find (fun (c : Ps.cell) -> Bdd.eval (env_of_packet p) c.guard) cells
      in
      let concrete = Acl.first_match acl p in
      match (cell.rule_seq, concrete) with
      | None, None -> cell.action = Action.Deny
      | Some seq, Some r -> seq = r.Acl.seq && cell.action = r.Acl.action
      | _ -> false)

let prop_to_packet_sound =
  QCheck.Test.make ~name:"extracted packets satisfy their region" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Acl.pp) gen_acl)
    (fun acl ->
      List.for_all
        (fun (c : Ps.cell) ->
          match Ps.to_packet c.guard with
          | None -> Bdd.is_zero c.guard
          | Some p -> Bdd.eval (env_of_packet p) c.guard)
        (Ps.exec acl))

let prop_permitted_agrees =
  QCheck.Test.make ~name:"permitted space = concrete permit" ~count:500
    arb_acl_packet
    (fun (acl, p) ->
      Bdd.eval (env_of_packet p) (Ps.permitted acl)
      = (Semantics.eval_acl acl p = Action.Permit))

(* ------------------------------------------------------------------ *)
(* Route space                                                        *)
(* ------------------------------------------------------------------ *)

let rich_config =
  {|
ip as-path access-list AP1 permit _32$
ip as-path access-list AP2 deny ^44_
ip as-path access-list AP2 permit _100_
ip prefix-list PL1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list PL1 seq 20 deny 10.1.0.0/16 le 32
ip prefix-list PL1 seq 30 permit 0.0.0.0/0 le 32
ip prefix-list PL2 seq 10 permit 100.0.0.0/16 le 23
ip community-list expanded CL1 permit _300:3_
ip community-list expanded CL2 deny _65000:1_
ip community-list expanded CL2 permit _65000:.*_
ip community-list standard CL3 permit 9:9 8:8
route-map RICH deny 10
 match as-path AP1
route-map RICH permit 20
 match ip address prefix-list PL1
 match community CL1
 set metric 55
route-map RICH deny 30
 match community CL2 CL3
route-map RICH permit 40
 match local-preference 300
 set local-preference 250
 set community 65000:1 additive
route-map RICH permit 50
 match ip address prefix-list PL2
 match as-path AP2
 set as-path prepend 65000
|}

let rich_db () = parse_ok rich_config
let rich_rm d = Option.get (Database.route_map d "RICH")

let gen_rich_route =
  (* Communities restricted to values in or near the context universe so
     the routes are representable. *)
  QCheck.Gen.(
    oneofl
      [ pfx "10.0.0.0/8"; pfx "10.1.2.0/24"; pfx "10.1.0.0/16";
        pfx "100.0.0.0/16"; pfx "100.0.0.0/20"; pfx "100.0.0.0/24";
        pfx "50.0.0.0/8"; pfx "10.2.0.0/25" ]
    >>= fun prefix ->
    list_size (int_range 0 3) (oneofl [ 32; 44; 100; 65000 ]) >>= fun as_path ->
    list_size (int_range 0 3)
      (oneofl [ comm "300:3"; comm "65000:1"; comm "65000:2"; comm "9:9"; comm "8:8" ])
    >>= fun communities ->
    oneofl [ 100; 300 ] >>= fun local_pref ->
    oneofl [ 0; 55 ] >>= fun metric ->
    oneofl [ 0; 7 ] >>= fun tag ->
    return (Bgp.Route.make ~as_path ~communities ~local_pref ~metric ~tag prefix))

let arb_rich_route =
  QCheck.make ~print:(Format.asprintf "%a" Bgp.Route.pp) gen_rich_route

let prop_stanza_bdd_agrees =
  QCheck.Test.make ~name:"stanza BDD agrees with concrete stanza match"
    ~count:500 arb_rich_route
    (fun r ->
      let d = rich_db () in
      let rm = rich_rm d in
      let ctx = Ctx.create [ (d, [ rm ]) ] in
      QCheck.assume (Ctx.representable ctx r);
      let env = Ctx.route_env ctx r in
      List.for_all
        (fun (s : Route_map.stanza) ->
          Bdd.eval env (Ctx.of_stanza ctx d s) = Semantics.stanza_matches d s r)
        rm.Route_map.stanzas)

let prop_route_cells_agree =
  QCheck.Test.make ~name:"symbolic route-map cell = concrete first match"
    ~count:500 arb_rich_route
    (fun r ->
      let d = rich_db () in
      let rm = rich_rm d in
      let ctx = Ctx.create [ (d, [ rm ]) ] in
      QCheck.assume (Ctx.representable ctx r);
      let env = Ctx.route_env ctx r in
      let cell =
        List.find (fun (c : Ctx.cell) -> Bdd.eval env c.guard) (Ctx.exec ctx d rm)
      in
      match (cell.stanza_seq, Semantics.matching_stanza d rm r) with
      | None, None -> cell.action = Action.Deny
      | Some seq, Some s -> seq = s.Route_map.seq
      | _ -> false)

let prop_extracted_routes_sound =
  QCheck.Test.make ~name:"extracted routes lie in their region" ~count:20
    QCheck.unit
    (fun () ->
      let d = rich_db () in
      let rm = rich_rm d in
      let ctx = Ctx.create [ (d, [ rm ]) ] in
      List.for_all
        (fun (c : Ctx.cell) ->
          match Ctx.to_route ctx c.guard with
          | None -> true (* emptiness is checked separately below *)
          | Some r ->
              (* The extracted route, re-encoded, must satisfy the guard
                 and be handled by the very stanza of this cell. *)
              Bdd.eval (Ctx.route_env ctx r) c.guard
              && (match (c.stanza_seq, Semantics.matching_stanza d rm r) with
                 | None, None -> true
                 | Some seq, Some s -> seq = s.Route_map.seq
                 | _ -> false))
        (Ctx.exec ctx d rm))

let test_every_rich_stanza_reachable () =
  let d = rich_db () in
  let rm = rich_rm d in
  let ctx = Ctx.create [ (d, [ rm ]) ] in
  List.iter
    (fun (c : Ctx.cell) ->
      match Ctx.to_route ctx c.guard with
      | Some _ -> ()
      | None ->
          Alcotest.failf "stanza %s unreachable"
            (match c.stanza_seq with
            | Some s -> string_of_int s
            | None -> "implicit-deny"))
    (Ctx.exec ctx d rm)

let test_as_path_feasibility () =
  (* AP1 (= _32$) and "not AP2" (AP2 permits paths containing 100 unless
     they start with 44): find a route in AP1 ∧ ¬AP2 and check it. *)
  let d = rich_db () in
  let rm = rich_rm d in
  let ctx = Ctx.create [ (d, [ rm ]) ] in
  let ap1 = Option.get (Database.as_path_list d "AP1") in
  let ap2 = Option.get (Database.as_path_list d "AP2") in
  let b =
    Bdd.conj (Ctx.of_as_path_list ctx ap1) (Bdd.neg (Ctx.of_as_path_list ctx ap2))
  in
  match Ctx.to_route ctx b with
  | Some r ->
      check "in AP1" true (As_path_list.matches ap1 r.Bgp.Route.as_path);
      check "not in AP2" false (As_path_list.matches ap2 r.Bgp.Route.as_path)
  | None -> Alcotest.fail "expected a feasible route"

let test_as_path_infeasible_blocked () =
  (* A single-entry list L: atom(L) ∧ ¬atom(L) must be infeasible. *)
  let d = rich_db () in
  let rm = rich_rm d in
  let ctx = Ctx.create [ (d, [ rm ]) ] in
  let ap1 = Option.get (Database.as_path_list d "AP1") in
  let v = Ctx.of_as_path_list ctx ap1 in
  check "contradiction empty" true (Ctx.to_route ctx (Bdd.conj v (Bdd.neg v)) = None)

let test_community_universe_covers () =
  (* Universe contains a witness for each expanded regex and the
     standard list communities. *)
  let d = rich_db () in
  let rm = rich_rm d in
  let ctx = Ctx.create [ (d, [ rm ]) ] in
  let u = Array.to_list ctx.Ctx.comm_universe in
  check "9:9 present" true (List.exists (Bgp.Community.equal (comm "9:9")) u);
  check "8:8 present" true (List.exists (Bgp.Community.equal (comm "8:8")) u);
  check "300:3 witness" true
    (List.exists
       (fun c ->
         Sre.Community_regex.matches
           (Sre.Community_regex.compile "_300:3_")
           (Bgp.Community.to_pair c))
       u);
  check "65000 witness not 65000:1" true
    (List.exists
       (fun c ->
         Sre.Community_regex.matches
           (Sre.Community_regex.compile "_65000:.*_")
           (Bgp.Community.to_pair c)
         && not (Bgp.Community.equal c (comm "65000:1")))
       u)

let test_prefix_range_bdd () =
  let d = rich_db () in
  let ctx = Ctx.create [ (d, [ rich_rm d ]) ] in
  let range =
    Netaddr.Prefix_range.make (pfx "100.0.0.0/16") ~ge:None ~le:(Some 23)
  in
  let b = Ctx.of_prefix_range range in
  let good = Bgp.Route.make (pfx "100.0.128.0/20") in
  let bad_len = Bgp.Route.make (pfx "100.0.0.0/24") in
  let bad_bits = Bgp.Route.make (pfx "101.0.0.0/20") in
  check "inside" true (Bdd.eval (Ctx.route_env ctx good) b);
  check "too long" false (Bdd.eval (Ctx.route_env ctx bad_len) b);
  check "wrong bits" false (Bdd.eval (Ctx.route_env ctx bad_bits) b)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "symbolic"
    [
      ( "packet-space",
        [
          q prop_rule_bdd_matches;
          q prop_exec_partition;
          q prop_exec_agrees_with_eval;
          q prop_to_packet_sound;
          q prop_permitted_agrees;
        ] );
      ( "route-space",
        [
          q prop_stanza_bdd_agrees;
          q prop_route_cells_agree;
          q prop_extracted_routes_sound;
          Alcotest.test_case "every stanza reachable" `Quick
            test_every_rich_stanza_reachable;
          Alcotest.test_case "as-path feasibility" `Quick test_as_path_feasibility;
          Alcotest.test_case "as-path contradiction" `Quick
            test_as_path_infeasible_blocked;
          Alcotest.test_case "community universe" `Quick
            test_community_universe_covers;
          Alcotest.test_case "prefix-range encoding" `Quick test_prefix_range_bdd;
        ] );
    ]
