(** IPv4 addresses represented as integers in [0, 2{^32}). *)

type t = private int

val zero : t
val broadcast : t

val of_int : int -> t
(** [of_int n] builds an address from an integer. @raise Invalid_argument
    if [n] is outside [0, 2{^32}). *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. @raise Invalid_argument
    if any octet is outside [0, 255]. *)

val of_string : string -> t option
(** Parse dotted-quad notation; [None] on malformed input. *)

val of_string_exn : string -> t
(** Like {!of_string}. @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a] counting from the most significant bit,
    so [bit a 0] is the top bit. @raise Invalid_argument unless
    [0 <= i < 32]. *)

val with_bit : t -> int -> bool -> t
(** [with_bit a i v] sets bit [i] (MSB-first) of [a] to [v]. *)

val mask : int -> t
(** [mask len] is the netmask with [len] leading one bits.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val wildcard_of_mask : t -> t
(** Bitwise complement, i.e. the Cisco wildcard form of a netmask. *)

val logand : t -> t -> t
val logor : t -> t -> t
val succ : t -> t
(** Successor, wrapping at the top of the address space. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
