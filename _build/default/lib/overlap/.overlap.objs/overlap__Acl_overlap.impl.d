lib/overlap/acl_overlap.ml: Bdd Config List Symbdd Symbolic
