(** Ablation A2 — "can the LLM play the disambiguator?" (the question
    the paper raises in its conclusion).

    Over a family of insertion scenarios with a hidden desired
    placement, we compare:
    - the heuristic LLM-style placement guess ({!Llm.Llm_placement}),
      which asks the user nothing;
    - Clarify's symbolic binary-search disambiguator, which asks
      differential-example questions and is correct by construction.

    Accuracy is behavioural: a placement counts as correct when the
    resulting map is behaviourally equal to the desired one. *)

type result = {
  scenarios : int;
  llm_correct : int;
  clarify_correct : int;
  clarify_questions_total : int;
}

(* The paper's running example with every possible desired placement,
   plus nested-overlap maps of growing size: each (map, stanza, p)
   triple is one scenario. *)
let scenarios () =
  let e1 =
    let db =
      match Config.Parser.parse E1_running_example.isp_out_config with
      | Ok db -> db
      | Error m -> failwith m
    in
    let snippet =
      match
        Config.Parser.parse
          {|ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55|}
      with
      | Ok s -> s
      | Error m -> failwith m
    in
    let rm = List.hd (Config.Database.route_maps snippet) in
    match Clarify.Naming.import_route_map_snippet ~db ~snippet rm with
    | Ok i ->
        let target =
          Option.get
            (Config.Database.route_map i.Clarify.Naming.db "ISP_OUT")
        in
        List.init 4 (fun p -> (i.Clarify.Naming.db, target, i.Clarify.Naming.stanza, p))
    | Error m -> failwith m
  in
  (* Disjoint-stanza maps with a catch-all insertion, n = 2..6, every
     placement. *)
  let nested =
    List.concat_map
      (fun n ->
        let db = ref Config.Database.empty in
        let stanzas =
          List.init n (fun i ->
              let name = Printf.sprintf "A2_%d_%d" n i in
              db :=
                Config.Database.add_prefix_list !db
                  (Config.Prefix_list.make name
                     [
                       Config.Prefix_list.entry ~seq:10
                         ~action:Config.Action.Permit
                         (Netaddr.Prefix_range.make
                            (Netaddr.Prefix.make
                               (Netaddr.Ipv4.of_octets 10 i 0 0)
                               16)
                            ~ge:None ~le:(Some 24));
                     ]);
              Config.Route_map.stanza ~seq:((i + 1) * 10)
                ~matches:[ Config.Route_map.Match_prefix_list [ name ] ]
                ~sets:[ Config.Route_map.Set_metric i ]
                (if i mod 2 = 0 then Config.Action.Permit else Config.Action.Deny))
        in
        let target = Config.Route_map.make (Printf.sprintf "A2_%d" n) stanzas in
        db := Config.Database.add_route_map !db target;
        let new_name = Printf.sprintf "A2_%d_NEW" n in
        db :=
          Config.Database.add_prefix_list !db
            (Config.Prefix_list.make new_name
               [
                 Config.Prefix_list.entry ~seq:10 ~action:Config.Action.Permit
                   (Netaddr.Prefix_range.make
                      (Netaddr.Prefix.of_string_exn "10.0.0.0/8")
                      ~ge:None ~le:(Some 32));
               ]);
        let stanza =
          Config.Route_map.stanza ~seq:999
            ~matches:[ Config.Route_map.Match_prefix_list [ new_name ] ]
            ~sets:[ Config.Route_map.Set_metric 99 ]
            Config.Action.Deny
        in
        List.init (n + 1) (fun p -> (!db, target, stanza, p)))
      [ 2; 3; 4; 5; 6 ]
  in
  e1 @ nested

let run () =
  let cases = scenarios () in
  let llm_correct = ref 0 in
  let clarify_correct = ref 0 in
  let questions = ref 0 in
  List.iter
    (fun (db, target, stanza, p) ->
      let desired_map = Config.Route_map.insert_at target p stanza in
      let equal_to_desired candidate =
        Engine.Compare_route_policies.equal_behavior ~db_a:db ~db_b:db
          candidate desired_map
      in
      (* LLM-style guess: no questions, textual heuristics only. *)
      if equal_to_desired (Llm.Llm_placement.place ~target ~stanza) then
        incr llm_correct;
      (* Clarify: symbolic binary search with the ideal user. *)
      let desired r = Config.Semantics.eval_route_map db desired_map r in
      match
        Clarify.Disambiguator.run ~db ~target ~stanza
          ~oracle:(Clarify.Disambiguator.intent_driven desired)
          ()
      with
      | Ok o ->
          questions := !questions + List.length o.Clarify.Disambiguator.questions;
          if equal_to_desired o.Clarify.Disambiguator.map then
            incr clarify_correct
      | Error _ -> ())
    cases;
  {
    scenarios = List.length cases;
    llm_correct = !llm_correct;
    clarify_correct = !clarify_correct;
    clarify_questions_total = !questions;
  }

let print fmt r =
  Format.fprintf fmt
    "=== Ablation A2: LLM-as-disambiguator baseline ===@.";
  Format.fprintf fmt
    "scenarios (hidden desired placement): %d@." r.scenarios;
  Format.fprintf fmt
    "LLM-style heuristic guess (0 questions):  %d/%d correct (%.0f%%)@."
    r.llm_correct r.scenarios
    (100.0 *. float_of_int r.llm_correct /. float_of_int r.scenarios);
  Format.fprintf fmt
    "Clarify symbolic disambiguator:           %d/%d correct (%.0f%%), %.1f \
     questions/scenario@.@."
    r.clarify_correct r.scenarios
    (100.0 *. float_of_int r.clarify_correct /. float_of_int r.scenarios)
    (float_of_int r.clarify_questions_total /. float_of_int r.scenarios)
