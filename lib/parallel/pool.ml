(* A Domain-based fork-join worker pool.

   Work arrives as a list; [map_chunked] partitions it into contiguous
   chunks, hands chunks out to [domains] workers (the calling domain
   participates as worker 0, [domains - 1] fresh domains are spawned
   per batch), and reassembles the results in input order, so a
   parallel map is observationally identical to [List.map] — the
   determinism contract the evaluation goldens rely on.

   Fresh domains per batch rather than persistent workers: every task
   class this system parallelizes is coarse (hundreds of microseconds
   to seconds per chunk), so the ~tens-of-microseconds spawn cost is
   noise, and short-lived domains mean each batch starts with a fresh
   domain-local BDD manager — memory from one corpus sweep can never
   leak into the next.

   Each worker gets an isolated BDD universe via the domain-local
   default manager in [Symbdd.Bdd]; tasks must therefore return plain
   data (stats, configs), never BDD values, and must not capture BDDs
   from the submitting domain. *)

type t = { domains : int }

let env_var = "CLARIFY_JOBS"

let default_domains () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

let create ?domains () =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  { domains }

let domains t = t.domains
let serial = { domains = 1 }

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                    *)
(* ------------------------------------------------------------------ *)

(* Per-domain labeled series, looked up at batch start (in the
   submitting domain) rather than cached at pool creation: Obs.reset
   drops labeled series, so handles must be re-acquired per batch.
   Each series is only ever touched by its own worker, so increments
   never race. *)
type worker_metrics = {
  tasks : Obs.Counter.t; (* parallel.tasks{domain=N} *)
  task_ns : Obs.Histogram.t; (* parallel.task_ns{domain=N} *)
  queue_wait_ns : Obs.Histogram.t; (* parallel.queue_wait_ns{domain=N} *)
  busy : Obs.Gauge.t; (* parallel.worker.busy{domain=N} *)
  bdd_nodes : Obs.Counter.t; (* bdd.nodes_allocated{domain=N} *)
  cache_hits : Obs.Counter.t; (* bdd.compile_cache.hits{domain=N} *)
  cache_misses : Obs.Counter.t;
}

let worker_metrics i =
  let l = [ ("domain", string_of_int i) ] in
  {
    tasks = Obs.Counter.labeled "parallel.tasks" l ~help:"tasks run per worker domain";
    task_ns = Obs.Histogram.labeled "parallel.task_ns" l
      ~help:"per-task wall time per worker domain";
    queue_wait_ns = Obs.Histogram.labeled "parallel.queue_wait_ns" l;
    busy = Obs.Gauge.labeled "parallel.worker.busy" l
      ~help:"1 while this worker domain is running batch chunks";
    bdd_nodes = Obs.Counter.labeled "bdd.nodes_allocated" l;
    cache_hits = Obs.Counter.labeled "bdd.compile_cache.hits" l;
    cache_misses = Obs.Counter.labeled "bdd.compile_cache.misses" l;
  }

let batches = lazy (Obs.Counter.make "parallel.batches")
let spawned = lazy (Obs.Counter.make "parallel.domains_spawned")

(* Live pool occupancy for scrapes. [pool_domains]/[active_workers]
   are pushed at batch boundaries; the chunk-queue depth is pulled by a
   collector from whatever batch is in flight, so a /metrics scrape
   during a long sweep sees the backlog drain. One batch runs at a
   time (the pool is driven from the submitting domain), so a single
   current-batch cell is enough; the [Atomic] makes the serving
   thread's read well-defined if it races a batch boundary. *)
let pool_domains =
  lazy
    (Obs.Gauge.make "parallel.pool.domains"
       ~help:"configured worker domains of the last batch's pool")

let active_workers =
  lazy
    (Obs.Gauge.make "parallel.pool.active_workers"
       ~help:"worker domains currently inside a batch")

let current_batch : (int * int Atomic.t) option Atomic.t = Atomic.make None

let () =
  ignore
    (Obs.Gauge.collector "parallel.queue.depth"
       ~help:"unclaimed chunks in the in-flight batch" (fun () ->
         match Atomic.get current_batch with
         | None -> 0.
         | Some (chunks, next) ->
             float_of_int (max 0 (chunks - Atomic.get next))))

(* Count BDD work into this worker's own labeled series. The hooks go
   on the worker's domain-local manager; worker 0 is the submitting
   domain, whose pre-existing hooks (the engine's process-wide
   counters) are saved and restored around the batch. *)
let with_worker_hooks m f =
  if not (Obs.enabled ()) then f ()
  else begin
    let saved_alloc = Symbdd.Bdd.get_alloc_hook () in
    let saved_cache = Symbdd.Bdd.get_cache_hook () in
    Symbdd.Bdd.set_alloc_hook (Some (fun () -> Obs.Counter.incr m.bdd_nodes));
    Symbdd.Bdd.set_cache_hook
      (Some
         (fun hit ->
           Obs.Counter.incr (if hit then m.cache_hits else m.cache_misses)));
    Fun.protect
      ~finally:(fun () ->
        Symbdd.Bdd.set_alloc_hook saved_alloc;
        Symbdd.Bdd.set_cache_hook saved_cache)
      f
  end

(* ------------------------------------------------------------------ *)
(* map_chunked                                                        *)
(* ------------------------------------------------------------------ *)

(* Contiguous chunk bounds: first [rem] chunks get one extra item. *)
let chunk_bounds ~n ~chunks i =
  let base = n / chunks and rem = n mod chunks in
  let start = (i * base) + min i rem in
  let len = base + if i < rem then 1 else 0 in
  (start, len)

(* Run [f] under a private delta manager layered on a frozen base, so
   tasks resolve shared compiled structure (nodes, compile cache) from
   the base and allocate only in their own delta. *)
let with_base_delta bdd_base f =
  match bdd_base with
  | None -> f ()
  | Some base ->
      Symbdd.Bdd.with_manager (Symbdd.Bdd.Manager.create_delta base) f

let map_chunked ?chunks_per_domain ?bdd_base pool ~f items =
  let n = List.length items in
  if n = 0 then []
  else if pool.domains <= 1 || n = 1 then
    (* Serial fallback: no domains, no instrumentation difference. The
       base delta still applies so tasks see the same manager layering
       regardless of pool size. *)
    with_base_delta bdd_base (fun () -> List.map f items)
  else begin
    let workers = min pool.domains n in
    let chunks =
      let per = Option.value chunks_per_domain ~default:1 in
      min n (workers * max 1 per)
    in
    let input = Array.of_list items in
    let results = Array.make chunks [] in
    let failures = Array.make chunks None in
    (* Chunks are claimed dynamically so stragglers load-balance when
       chunks_per_domain > 1; result slots are per-chunk, so workers
       never write to the same cell. *)
    let next_chunk = Atomic.make 0 in
    let submitted = Obs.now () in
    let metrics =
      if Obs.enabled () then Array.init workers worker_metrics else [||]
    in
    let worker w =
      let m = if Obs.enabled () then Some metrics.(w) else None in
      let run_chunks () =
        (match m with
        | Some m ->
            Obs.Histogram.observe_ns m.queue_wait_ns
              ((Obs.now () -. submitted) *. 1e9)
        | None -> ());
        let rec loop () =
          let c = Atomic.fetch_and_add next_chunk 1 in
          if c < chunks then begin
            let start, len = chunk_bounds ~n ~chunks c in
            (match
               List.init len (fun j ->
                   let t0 = Obs.now () in
                   let r = f input.(start + j) in
                   (match m with
                   | Some m ->
                       Obs.Counter.incr m.tasks;
                       Obs.Histogram.observe_ns m.task_ns
                         ((Obs.now () -. t0) *. 1e9)
                   | None -> ());
                   r)
             with
            | rs -> results.(c) <- rs
            | exception e -> failures.(c) <- Some e);
            loop ()
          end
        in
        loop ()
      in
      let instrumented () =
        match m with
        | Some m ->
            Obs.Gauge.set m.busy 1.;
            Fun.protect
              ~finally:(fun () -> Obs.Gauge.set m.busy 0.)
              (fun () ->
                with_worker_hooks m (fun () ->
                    (* Root span per worker: a separate thread lane in
                       the Chrome-trace export of any recording
                       session. *)
                    Obs.with_span (Printf.sprintf "domain%d" w) run_chunks))
        | None -> run_chunks ()
      in
      (* Install the worker's private delta (if a base was supplied)
         before the hooks, so the hooks land on the delta manager. *)
      with_base_delta bdd_base instrumented
    in
    if Obs.enabled () then begin
      Obs.Counter.incr (Lazy.force batches);
      Obs.Counter.incr ~by:(workers - 1) (Lazy.force spawned);
      Obs.Gauge.set (Lazy.force pool_domains) (float_of_int pool.domains);
      Obs.Gauge.set (Lazy.force active_workers) (float_of_int workers);
      Atomic.set current_batch (Some (chunks, next_chunk))
    end;
    let ds =
      List.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter Domain.join ds;
        if Obs.enabled () then begin
          Atomic.set current_batch None;
          Obs.Gauge.set (Lazy.force active_workers) 0.
        end)
      (fun () -> worker 0);
    (match
       Array.to_seq failures |> Seq.filter_map Fun.id |> Seq.uncons
     with
    | Some (e, _) -> raise e
    | None -> ());
    Array.to_list results |> List.concat
  end
