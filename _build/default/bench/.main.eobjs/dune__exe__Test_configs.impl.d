bench/test_configs.ml:
