(** The flight recorder and the bench-snapshot regression gate.

    A recording session appends one JSONL event per pipeline
    interaction — intent, classifier verdict, every LLM exchange
    (including injected faults), spec, verifier verdicts, every
    disambiguation question with its answer, binary-search probes, and
    the final placement — so that any session can be replayed
    bit-for-bit ({!Clarify.Replay}) and any bug report is a
    reproducible artifact.

    Like [lib/obs] this is a leaf library (depends on [json] and [obs]
    only): emitters render domain values to strings/JSON themselves.
    See DESIGN.md §Observability for the event schema. *)

(** One recorded interaction. *)
module Event : sig
  type t = {
    seq : int; (* 0-based, per recording session *)
    kind : string; (* e.g. "session_start", "llm_synthesize" *)
    span : string; (* active {!Obs} span path at emission, or "" *)
    ts_ns : float; (* nanoseconds since the recorder was installed *)
    ctx : (string * string) list; (* ambient {!with_context} labels *)
    fields : (string * Json.t) list; (* kind-specific payload *)
  }

  val to_json : t -> Json.t
  (** [ts_ns] is always serialized; [ctx] only when non-empty, so logs
      recorded outside any context keep their old shape. *)

  val of_json : Json.t -> (t, string) result
  (** Missing [ts_ns]/[ctx] (logs from before they existed) default to
      [0.] and [[]]. *)

  val matches : t -> t -> bool
  (** Replay equivalence: same [kind] and same [fields], ignoring [seq],
      [span], timestamps, context and the fields a replay cannot
      reproduce (["fault"]: the replayed LLM feeds responses from the
      log, so it does not know which fault produced them; token
      estimates, absent from pre-cost-accounting logs). *)

  val field : string -> t -> Json.t option
  val str_field : string -> t -> string option
  val int_field : string -> t -> int option
end

val recording : unit -> bool
(** Is a recorder installed? Emitters use this to skip building
    expensive payloads; {!emit} is a no-op either way. *)

val emit : kind:string -> (unit -> (string * Json.t) list) -> unit
(** Append one event. The payload thunk is only forced while recording,
    so instrumentation is free when no recorder is installed. *)

val with_context : (string * string) list -> (unit -> 'a) -> 'a
(** [with_context kvs f] stamps [kvs] (appended to any enclosing
    context) onto every event emitted during [f], e.g.
    [("router", "R1")] around one router's evaluation run. Restored on
    exit, including on raise. *)

val record_to_channel : out_channel -> unit
(** Install a recorder that writes one JSON object per line, flushed
    after every event (a crash loses nothing already emitted). *)

val with_channel_recorder : out_channel -> (unit -> 'a) -> 'a
(** Run [f] with a fresh channel recorder installed, restoring the
    previously installed recorder (if any) afterwards — including on
    raise. The channel is not closed. *)

val record_to_memory : unit -> unit -> Event.t list
(** Install an in-memory recorder; the returned thunk yields the events
    recorded so far, oldest first. *)

val with_memory_recorder : (unit -> 'a) -> 'a * Event.t list
(** Run [f] under a fresh in-memory recorder, restoring the previously
    installed recorder (if any) afterwards — including on raise, where
    the events are lost with the exception. *)

val stop : unit -> unit
(** Uninstall the current recorder (the channel is not closed). *)

val span_sink : unit -> Obs.sink
(** An {!Obs} sink that mirrors each completed span into the event log
    as a [kind="span"] event (fields [path], [depth], [start_ns],
    [duration_ns], [span_seq]), so a recording carries its own timing
    tree for [clarify trace export]. Install with [Obs.add_sink].
    Replay filters these events out: span timings are wall-clock. *)

val parse_events : string -> (Event.t list, string) result
(** Parse a JSONL event log; blank lines are skipped. *)

val load_file : string -> (Event.t list, string) result

(** Machine-readable bench snapshots ([bench/main.exe --json]) and the
    [clarify obs diff] regression gate. *)
module Bench : sig
  val schema : string
  (** ["clarify-bench/1"], embedded in every snapshot file. *)

  type experiment = {
    snapshot : Obs.Snapshot.t; (* counters + latency histograms *)
    events : int; (* flight-recorder events emitted *)
  }

  type t = {
    domains : int;
        (** Worker-domain count the snapshot was taken at ([--jobs] /
            [CLARIFY_JOBS]); 1 when reading pre-parallelism files.
            [clarify obs diff] refuses to compare snapshots taken at
            different parallelism — timings would not be comparable. *)
    experiments : (string * experiment) list; (* e.g. "E1" .. "E4" *)
    benchmarks : (string * float) list; (* Bechamel name -> ns/run *)
  }

  val to_json : t -> Json.t
  val of_json : Json.t -> (t, string) result
  val of_string : string -> (t, string) result
  val load_file : string -> (t, string) result

  (** One compared metric. Metrics live in a flat namespace:
      [exp.<E>.counter.<name>], [exp.<E>.gauge.<name>],
      [exp.<E>.hist.<path>.mean_ns], [bench.<name>.ns_per_run].
      Gauge entries are informational — point-in-time ambient state
      (GC words, BDD manager sizes) rides along for visibility but
      never regresses a diff. *)
  type delta = {
    metric : string;
    old_value : float option; (* [None]: only in the new snapshot *)
    new_value : float option; (* [None]: only in the old snapshot *)
    change : float; (* (new - old) / old; 0 when a side is missing *)
    regressed : bool; (* change > threshold *)
  }

  val default_threshold : float
  (** 0.20: a metric may grow by 20% before the gate trips. *)

  val diff : ?threshold:float -> t -> t -> delta list
  (** Every metric of either snapshot, old-snapshot order first. A
      metric regresses when it grows by more than [threshold]
      (fractional); metrics present on only one side never regress. *)

  val regressed : delta list -> bool

  val pp_delta : Format.formatter -> delta -> unit

  val pp_diff : ?all:bool -> Format.formatter -> delta list -> unit
  (** A one-line [N regressed / N improved / N unchanged] summary,
      then the changed metrics only (plus added/removed) unless
      [all]. *)
end
