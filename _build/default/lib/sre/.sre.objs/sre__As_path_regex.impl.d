lib/sre/as_path_regex.ml: Alphabet Format List Netaddr Option Printf Regex String
