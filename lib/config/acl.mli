(** Cisco extended access lists: ordered permit/deny rules over packet
    headers, evaluated first-match with an implicit trailing deny. *)

type addr_spec =
  | Any
  | Host of Netaddr.Ipv4.t
  | Wildcard of Netaddr.Ipv4.t * Netaddr.Ipv4.t
      (** base address and Cisco wildcard mask: a packet address [x]
          matches iff it agrees with the base on every zero bit of the
          wildcard. Wildcards need not be contiguous. *)

type port_spec =
  | Any_port
  | Eq of int
  | Neq of int
  | Lt of int
  | Gt of int
  | Range of int * int (* inclusive *)

type rule = {
  seq : int;
  action : Action.t;
  protocol : Packet.protocol; (* [Ip] matches every protocol *)
  src : addr_spec;
  src_port : port_spec;
  dst : addr_spec;
  dst_port : port_spec;
  established : bool; (* only matches established TCP segments *)
}

type t = { name : string; rules : rule list (* ascending seq *) }

val addr_of_prefix : Netaddr.Prefix.t -> addr_spec
(** [Host] for /32, [Any] for /0, a contiguous [Wildcard] otherwise. *)

val addr_to_prefix : addr_spec -> Netaddr.Prefix.t option
(** The prefix equivalent of an address spec when its wildcard mask is
    contiguous; [None] for discontiguous masks. *)

val make : string -> rule list -> t
(** Sorts rules by sequence number. *)

val rule :
  ?seq:int ->
  ?protocol:Packet.protocol ->
  ?src:addr_spec ->
  ?src_port:port_spec ->
  ?dst:addr_spec ->
  ?dst_port:port_spec ->
  ?established:bool ->
  Action.t ->
  rule
(** Defaults: seq 0 (assign on {!append}), protocol [Ip], everything
    unconstrained. *)

val match_addr : addr_spec -> Netaddr.Ipv4.t -> bool
val match_port : port_spec -> int -> bool
val match_rule : rule -> Packet.t -> bool

val first_match : t -> Packet.t -> rule option
val eval : t -> Packet.t -> Action.t option
(** First-match action; [None] when no rule matches (implicit deny). *)

val permits : t -> Packet.t -> bool
val next_seq : t -> int
val append : t -> rule -> t

val resequence : t -> t
(** Renumber every rule 10, 20, 30, ... preserving order. *)

val insert_at : t -> int -> rule -> t
(** Insert a rule at a 0-based position and {!resequence}, mirroring
    {!Route_map.insert_at}. Raises [Invalid_argument] when the position
    is outside [0..length rules]. *)

val rename : t -> string -> t
val string_of_rule : rule -> string
val pp : Format.formatter -> t -> unit
