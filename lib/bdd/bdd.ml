type t =
  | Zero
  | One
  | Node of { v : int; lo : t; hi : t; id : int }

let id = function Zero -> 0 | One -> 1 | Node n -> n.id
let level = function Zero | One -> max_int | Node n -> n.v

let zero = Zero
let one = One

(* ------------------------------------------------------------------ *)
(* Managers                                                           *)
(* ------------------------------------------------------------------ *)

(* All mutable state of the hash-consing engine lives in an explicit
   manager record: the unique table, the id allocator, the operation
   memo tables, the symbolic compilation cache and the observability
   hooks. Node ids (and therefore physical equality of results) are
   only meaningful relative to the manager that built them, so values
   from different managers must never be mixed in one operation.

   The public operations below act on a domain-local default manager
   (one per [Domain], via [Domain.DLS]), which keeps the historical
   module-level API while making every domain an isolated, race-free
   BDD universe: parallel workers hash-cons into their own tables with
   no locks on the allocation path. *)
module Manager = struct
  type bdd = t

  type t = {
    unique : (int * int * int, bdd) Hashtbl.t; (* (var, lo id, hi id) *)
    mutable next_id : int;
    neg_memo : (int, bdd) Hashtbl.t;
    and_memo : (int * int, bdd) Hashtbl.t;
    xor_memo : (int * int, bdd) Hashtbl.t;
    restrict_memo : (int * int * bool, bdd) Hashtbl.t;
    (* Structural-hash-keyed compilation cache: callers memoize
       "source object -> BDD" translations (ACL rules, prefix lists)
       under a canonical string key, so corpus sweeps compile each
       distinct rule once per manager epoch instead of once per use. *)
    compile_cache : (string, bdd) Hashtbl.t;
    mutable cache_hits : int;
    mutable cache_misses : int;
    (* Observability hooks, fired per fresh node allocation / per
       compilation-cache probe. [None] (the default) costs a single
       match; per-manager so concurrent domains never share a hook. *)
    mutable alloc_hook : (unit -> unit) option;
    mutable cache_hook : (bool -> unit) option; (* arg: was it a hit? *)
  }

  let create () =
    {
      unique = Hashtbl.create 65536;
      next_id = 2;
      neg_memo = Hashtbl.create 4096;
      and_memo = Hashtbl.create 65536;
      xor_memo = Hashtbl.create 4096;
      restrict_memo = Hashtbl.create 4096;
      compile_cache = Hashtbl.create 1024;
      cache_hits = 0;
      cache_misses = 0;
      alloc_hook = None;
      cache_hook = None;
    }

  (* Drop the operation memo tables only; hash-consed nodes (and the
     compilation cache, which pins them) survive. *)
  let clear_caches m =
    Hashtbl.reset m.neg_memo;
    Hashtbl.reset m.and_memo;
    Hashtbl.reset m.xor_memo;
    Hashtbl.reset m.restrict_memo

  (* Full reset: unique table, id allocator, memos and the compilation
     cache. Every BDD built by this manager is invalidated — only call
     between independent analyses when none of them is still live. *)
  let reset m =
    clear_caches m;
    Hashtbl.reset m.unique;
    Hashtbl.reset m.compile_cache;
    m.next_id <- 2

  type stats = {
    nodes : int; (* live entries in the unique table *)
    next_id : int;
    neg_memo : int;
    and_memo : int;
    xor_memo : int;
    restrict_memo : int;
    cache_entries : int;
    cache_hits : int;
    cache_misses : int;
  }

  let stats m =
    {
      nodes = Hashtbl.length m.unique;
      next_id = m.next_id;
      neg_memo = Hashtbl.length m.neg_memo;
      and_memo = Hashtbl.length m.and_memo;
      xor_memo = Hashtbl.length m.xor_memo;
      restrict_memo = Hashtbl.length m.restrict_memo;
      cache_entries = Hashtbl.length m.compile_cache;
      cache_hits = m.cache_hits;
      cache_misses = m.cache_misses;
    }

  let key = Domain.DLS.new_key create
  let current () = Domain.DLS.get key
end

let manager = Manager.current

let with_manager m f =
  let saved = Domain.DLS.get Manager.key in
  Domain.DLS.set Manager.key m;
  Fun.protect ~finally:(fun () -> Domain.DLS.set Manager.key saved) f

let set_alloc_hook h = (manager ()).Manager.alloc_hook <- h
let set_cache_hook h = (manager ()).Manager.cache_hook <- h
let get_alloc_hook () = (manager ()).Manager.alloc_hook
let get_cache_hook () = (manager ()).Manager.cache_hook
let clear_caches () = Manager.clear_caches (manager ())

let mk (m : Manager.t) v lo hi =
  if lo == hi then lo
  else
    let key = (v, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = Node { v; lo; hi; id = m.next_id } in
        m.next_id <- m.next_id + 1;
        Hashtbl.add m.unique key n;
        (match m.alloc_hook with None -> () | Some f -> f ());
        n

let var i =
  if i < 0 then invalid_arg "Bdd.var";
  mk (manager ()) i Zero One

let nvar i =
  if i < 0 then invalid_arg "Bdd.nvar";
  mk (manager ()) i One Zero

let rec neg_m (m : Manager.t) t =
  match t with
  | Zero -> One
  | One -> Zero
  | Node { v; lo; hi; id } -> (
      match Hashtbl.find_opt m.neg_memo id with
      | Some r -> r
      | None ->
          let r = mk m v (neg_m m lo) (neg_m m hi) in
          Hashtbl.add m.neg_memo id r;
          r)

let neg t = neg_m (manager ()) t

let branches t v =
  match t with
  | Node n when n.v = v -> (n.lo, n.hi)
  | _ -> (t, t)

let rec conj_m (m : Manager.t) a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, t | t, One -> t
  | _ when a == b -> a
  | _ ->
      let ia = id a and ib = id b in
      let key = if ia < ib then (ia, ib) else (ib, ia) in
      ( match Hashtbl.find_opt m.and_memo key with
      | Some r -> r
      | None ->
          let v = min (level a) (level b) in
          let alo, ahi = branches a v and blo, bhi = branches b v in
          let r = mk m v (conj_m m alo blo) (conj_m m ahi bhi) in
          Hashtbl.add m.and_memo key r;
          r )

let conj a b = conj_m (manager ()) a b

let disj_m m a b = neg_m m (conj_m m (neg_m m a) (neg_m m b))
let disj a b = disj_m (manager ()) a b

let rec xor_m (m : Manager.t) a b =
  match (a, b) with
  | Zero, t | t, Zero -> t
  | One, t | t, One -> neg_m m t
  | _ when a == b -> Zero
  | _ ->
      let ia = id a and ib = id b in
      let key = if ia < ib then (ia, ib) else (ib, ia) in
      ( match Hashtbl.find_opt m.xor_memo key with
      | Some r -> r
      | None ->
          let v = min (level a) (level b) in
          let alo, ahi = branches a v and blo, bhi = branches b v in
          let r = mk m v (xor_m m alo blo) (xor_m m ahi bhi) in
          Hashtbl.add m.xor_memo key r;
          r )

let xor a b = xor_m (manager ()) a b

let imp a b =
  let m = manager () in
  disj_m m (neg_m m a) b

let iff a b = neg_m (manager ()) (xor_m (manager ()) a b)

let ite c t e =
  let m = manager () in
  disj_m m (conj_m m c t) (conj_m m (neg_m m c) e)

let conj_list ts =
  let m = manager () in
  List.fold_left (conj_m m) One ts

let disj_list ts =
  let m = manager () in
  List.fold_left (disj_m m) Zero ts

let rec restrict_m (m : Manager.t) v b t =
  match t with
  | Zero | One -> t
  | Node n when n.v > v -> t
  | Node n when n.v = v -> if b then n.hi else n.lo
  | Node n -> (
      let key = (n.id, v, b) in
      match Hashtbl.find_opt m.restrict_memo key with
      | Some r -> r
      | None ->
          let r = mk m n.v (restrict_m m v b n.lo) (restrict_m m v b n.hi) in
          Hashtbl.add m.restrict_memo key r;
          r)

let restrict v b t = restrict_m (manager ()) v b t

let exists_var m v t = disj_m m (restrict_m m v false t) (restrict_m m v true t)

let exists vs t =
  let m = manager () in
  List.fold_left (fun t v -> exists_var m v t) t vs

let is_zero t = t == Zero
let is_one t = t == One
let equal a b = a == b
let compare a b = Int.compare (id a) (id b)
let hash t = id t
let is_sat t = not (is_zero t)

let implies a b =
  let m = manager () in
  is_zero (conj_m m a (neg_m m b))

(* ------------------------------------------------------------------ *)
(* Symbolic compilation cache                                         *)
(* ------------------------------------------------------------------ *)

let cached ~key f =
  let m = manager () in
  match Hashtbl.find_opt m.Manager.compile_cache key with
  | Some b ->
      m.Manager.cache_hits <- m.Manager.cache_hits + 1;
      (match m.Manager.cache_hook with None -> () | Some h -> h true);
      b
  | None ->
      m.Manager.cache_misses <- m.Manager.cache_misses + 1;
      (match m.Manager.cache_hook with None -> () | Some h -> h false);
      let b = f () in
      Hashtbl.add m.Manager.compile_cache key b;
      b

let any_sat t =
  let rec go acc = function
    | Zero -> raise Not_found
    | One -> List.rev acc
    | Node { v; lo; hi; _ } ->
        if is_zero hi then go ((v, false) :: acc) lo
        else go ((v, true) :: acc) hi
  in
  go [] t

let all_sat t =
  let rec go acc t () =
    match t with
    | Zero -> Seq.Nil
    | One -> Seq.Cons (List.rev acc, Seq.empty)
    | Node { v; lo; hi; _ } ->
        Seq.append (go ((v, false) :: acc) lo) (go ((v, true) :: acc) hi) ()
  in
  go [] t

let sat_count ~nvars t =
  let lvl u = match u with Zero | One -> nvars | Node n -> n.v in
  let memo = Hashtbl.create 256 in
  let pow2 n = Float.of_int 1 *. Float.pow 2. (Float.of_int n) in
  let rec go t =
    match t with
    | Zero -> 0.
    | One -> 1.
    | Node { v; lo; hi; id } -> (
        match Hashtbl.find_opt memo id with
        | Some c -> c
        | None ->
            let c =
              (go lo *. pow2 (lvl lo - v - 1))
              +. (go hi *. pow2 (lvl hi - v - 1))
            in
            Hashtbl.add memo id c;
            c)
  in
  go t *. pow2 (min (lvl t) nvars)

let size t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node { lo; hi; id; _ } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          go lo;
          go hi
        end
  in
  go t;
  Hashtbl.length seen

let support t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node { v; lo; hi; id } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          Hashtbl.replace vars v ();
          go lo;
          go hi
        end
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval env = function
  | Zero -> false
  | One -> true
  | Node { v; lo; hi; _ } -> if env v then eval env hi else eval env lo

let rec pp fmt = function
  | Zero -> Format.pp_print_string fmt "F"
  | One -> Format.pp_print_string fmt "T"
  | Node { v; lo; hi; _ } ->
      Format.fprintf fmt "@[<hv 1>(x%d?%a:%a)@]" v pp hi pp lo

let node_count () = Hashtbl.length (manager ()).Manager.unique
