(** Stanza-overlap analysis for route-maps.

    Per the paper, two stanzas overlap when at least one route
    advertisement matches both; actions are ignored in the headline
    count (a stanza may chain into other policies), making it an upper
    bound. Conflicting pairs (differing actions) are still reported for
    the campus-network breakdown. *)

open Symbdd
module Ctx = Symbolic.Route_ctx

type pair = {
  stanza_a : Config.Route_map.stanza;
  stanza_b : Config.Route_map.stanza;
  conflicting : bool;
}

type stats = {
  name : string;
  stanzas : int;
  overlap_pairs : int;
  conflict_pairs : int;
}

let pairs db (rm : Config.Route_map.t) =
  let ctx = Ctx.create [ (db, [ rm ]) ] in
  let feas = Ctx.valid ctx in
  let stanzas =
    List.map
      (fun s -> (s, Bdd.conj feas (Ctx.of_stanza ctx db s)))
      rm.Config.Route_map.stanzas
  in
  let rec go acc = function
    | [] -> List.rev acc
    | (s1, b1) :: rest ->
        let acc =
          List.fold_left
            (fun acc (s2, b2) ->
              (* Intersection must contain a real route, so as-path atom
                 feasibility is honoured via the context. *)
              if Ctx.is_sat ctx (Bdd.conj b1 b2) then
                {
                  stanza_a = s1;
                  stanza_b = s2;
                  conflicting = not (Config.Action.equal s1.action s2.action);
                }
                :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  go [] stanzas

let analyze db (rm : Config.Route_map.t) =
  let ps = pairs db rm in
  {
    name = rm.Config.Route_map.name;
    stanzas = List.length rm.Config.Route_map.stanzas;
    overlap_pairs = List.length ps;
    conflict_pairs = List.length (List.filter (fun p -> p.conflicting) ps);
  }

(** A route witnessing the overlap of two stanzas. *)
let witness db rm (s1 : Config.Route_map.stanza) (s2 : Config.Route_map.stanza)
    =
  let ctx = Ctx.create [ (db, [ rm ]) ] in
  Ctx.to_route ctx
    (Bdd.conj (Ctx.of_stanza ctx db s1) (Ctx.of_stanza ctx db s2))

(* ------------------------------------------------------------------ *)
(* Cross-map chain overlaps                                           *)
(* ------------------------------------------------------------------ *)

type chain_pair = {
  map_a : string;
  map_b : string;
  chain_stanza_a : Config.Route_map.stanza;
  chain_stanza_b : Config.Route_map.stanza;
}

(** Overlaps between stanzas of {e different} route-maps applied in
    sequence to the same neighbor — the paper notes these are common in
    cloud routers, where "it was more common to use a sequence of
    multiple route maps". *)
let chain_pairs db (rms : Config.Route_map.t list) =
  let ctx = Ctx.create [ (db, rms) ] in
  let feas = Ctx.valid ctx in
  let tagged =
    List.concat_map
      (fun (rm : Config.Route_map.t) ->
        List.map
          (fun s ->
            (rm.Config.Route_map.name, s, Bdd.conj feas (Ctx.of_stanza ctx db s)))
          rm.Config.Route_map.stanzas)
      rms
  in
  let rec go acc = function
    | [] -> List.rev acc
    | (name1, s1, b1) :: rest ->
        let acc =
          List.fold_left
            (fun acc (name2, s2, b2) ->
              if name1 <> name2 && Ctx.is_sat ctx (Bdd.conj b1 b2) then
                {
                  map_a = name1;
                  map_b = name2;
                  chain_stanza_a = s1;
                  chain_stanza_b = s2;
                }
                :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  go [] tagged
