(** The paper's disambiguator (Section 4) for route-maps.

    Candidate placements of a verified stanza [S*] into a target map of
    [n] stanzas are positions 0..n. Adjacent placements [i] and [i+1]
    differ exactly on routes that match [S*] and are handled by the
    original stanza at position [i]; such a position is a {e boundary}
    and each boundary comes with a differential example computed by
    {!Engine.Compare_route_policies}. Under the paper's three
    well-formedness conditions on the intended semantics [M'], the
    user's answers are monotone across boundaries, so binary search
    identifies the placement with a logarithmic number of questions. *)

type question = {
  position : int; (* boundary position, 0-based into the target *)
  boundary_seq : int; (* seq of the original stanza at that position *)
  route : Bgp.Route.t;
  if_new_first : Config.Semantics.route_result;
  if_old_first : Config.Semantics.route_result;
}

type answer = Disambig_common.answer =
  | Prefer_new (* the route should be handled by the new stanza *)
  | Prefer_old (* the route should keep its existing behaviour *)

type oracle = question -> answer

type mode =
  | Binary_search (* the paper's Section 4 algorithm *)
  | Top_bottom (* the paper's prototype: only positions 0 and n *)
  | Linear (* ask every boundary; detects inconsistent intent *)

type outcome = {
  map : Config.Route_map.t;
  position : int; (* chosen placement *)
  questions : question list; (* in the order asked *)
  boundaries : int; (* number of differing boundaries found *)
}

type error =
  | Inconsistent_intent of question list
      (** Linear mode found non-monotone answers: no single insertion
          point implements the user's wishes (paper condition 3 fails). *)
  | Top_bottom_insufficient of question list
      (** Top/bottom mode: the two extreme placements both contradict
          some user answer. *)

let pp_question fmt q =
  Format.fprintf fmt
    "@[<v>Where the new stanza is placed changes the treatment of this \
     route (boundary: existing stanza %d):@ %a@ @ OPTION 1 (new stanza \
     first):@ %a@ @ OPTION 2 (existing stanza first):@ %a@]"
    q.boundary_seq Bgp.Route.pp q.route Config.Semantics.pp_route_result
    q.if_new_first Config.Semantics.pp_route_result q.if_old_first

(* Observability (see DESIGN.md §Observability for the naming scheme). *)
let questions_counter =
  Obs.Counter.make "disambiguator.questions"
    ~help:"differential questions shown to the user"

let boundaries_counter =
  Obs.Counter.make "disambiguator.boundaries"
    ~help:"differing insertion boundaries (overlaps) found"

let probes_counter =
  Obs.Counter.make "disambiguator.binary_search.probes"
    ~help:"binary-search iterations (search depth)"

(* Boundary questions: position i differs from i+1 exactly on routes
   handled by original stanza i and matched by the new stanza. The
   sweep itself lives in {!Engine.Compare_route_policies} so the target
   is compiled once (or per chunk under [?pool]) instead of once per
   position; CLARIFY_NAIVE_BOUNDARIES=1 restores the per-position
   comparisons. *)
let boundaries ?pool ~db ~(target : Config.Route_map.t) stanza =
  Obs.with_span "find_boundaries" @@ fun () ->
  let stanzas = Array.of_list target.Config.Route_map.stanzas in
  let bs =
    List.map
      (fun (i, (d : Engine.Compare_route_policies.difference)) ->
        {
          position = i;
          boundary_seq = stanzas.(i).Config.Route_map.seq;
          route = d.route;
          if_new_first = d.result_a;
          if_old_first = d.result_b;
        })
      (Engine.Compare_route_policies.adjacent_insertions ?pool ~db ~target
         stanza)
  in
  Obs.Counter.incr ~by:(List.length bs) boundaries_counter;
  bs

let view (q : question) =
  {
    Disambig_common.position = q.position;
    boundary_seq = q.boundary_seq;
    example = Format.asprintf "%a" Bgp.Route.pp q.route;
    if_new_first =
      Format.asprintf "%a" Config.Semantics.pp_route_result q.if_new_first;
    if_old_first =
      Format.asprintf "%a" Config.Semantics.pp_route_result q.if_old_first;
  }

let run ?(mode = Binary_search) ?pool ?precomputed ~db
    ~(target : Config.Route_map.t) ~(stanza : Config.Route_map.stanza)
    ~(oracle : oracle) () =
  let n = List.length target.Config.Route_map.stanzas in
  let map_at p = Config.Route_map.insert_at target p stanza in
  (* Batch runs hand in boundaries they already translated from a
     shared multi-stanza sweep; the counter still ticks so telemetry
     matches a sequential run. *)
  let boundaries ?pool ~db ~target stanza =
    match precomputed with
    | Some bs ->
        Obs.Counter.incr ~by:(List.length bs) boundaries_counter;
        bs
    | None -> boundaries ?pool ~db ~target stanza
  in
  let asked, ask =
    Disambig_common.asker ~subsystem:"route_map" ~counter:questions_counter
      ~view ~oracle
  in
  match mode with
  | Top_bottom -> (
      (* The prototype's restricted mode: one question if the two
         extreme placements differ. Those placements differ exactly
         when some adjacent boundary does, and the first boundary's
         witness is the same route the two-extremes comparison finds
         first, so the sweep serves this mode too. *)
      match boundaries ?pool ~db ~target stanza with
      | [] ->
          Ok { map = map_at n; position = n; questions = []; boundaries = 0 }
      | b :: _ -> (
          let q =
            {
              position = 0;
              boundary_seq =
                (List.hd target.Config.Route_map.stanzas).Config.Route_map.seq;
              route = b.route;
              if_new_first = b.if_new_first;
              if_old_first = b.if_old_first;
            }
          in
          match ask q with
          | Prefer_new ->
              Ok
                {
                  map = map_at 0;
                  position = 0;
                  questions = asked ();
                  boundaries = 1;
                }
          | Prefer_old ->
              Ok
                {
                  map = map_at n;
                  position = n;
                  questions = asked ();
                  boundaries = 1;
                }))
  | Binary_search ->
      let bs = boundaries ?pool ~db ~target stanza in
      let k = List.length bs in
      if k = 0 then
        (* No overlap with any existing stanza: all placements are
           behaviourally equivalent; append at the bottom. *)
        Ok { map = map_at n; position = n; questions = []; boundaries = 0 }
      else begin
        let arr = Array.of_list bs in
        let hi =
          Disambig_common.binary_search ~subsystem:"route_map"
            ~probes:probes_counter ~ask arr
        in
        let position = if hi = k then n else arr.(hi).position in
        Ok
          {
            map = map_at position;
            position;
            questions = asked ();
            boundaries = k;
          }
      end
  | Linear ->
      let bs = boundaries ?pool ~db ~target stanza in
      let answers = List.map (fun q -> (q, ask q)) bs in
      if not (Disambig_common.monotone answers) then
        Error (Inconsistent_intent (asked ()))
      else
        let position =
          Disambig_common.first_new_position ~default:n
            ~position:(fun (q : question) -> q.position)
            answers
        in
        Ok
          {
            map = map_at position;
            position;
            questions = asked ();
            boundaries = List.length bs;
          }

(* ------------------------------------------------------------------ *)
(* Oracles                                                            *)
(* ------------------------------------------------------------------ *)

(** Answers drawn from a fixed list (for scripted tests/CLIs); raises
    [Failure] when exhausted. *)
let scripted answers : oracle = Disambig_common.scripted answers

(** The ideal user: answers according to a target semantics. *)
let intent_driven (desired : Bgp.Route.t -> Config.Semantics.route_result) =
  fun q ->
    let want = desired q.route in
    if Config.Semantics.route_result_equal want q.if_new_first then Prefer_new
    else Prefer_old

(** A user who always wants the new stanza to win on overlaps. *)
let always_new (_ : question) = Prefer_new

(** A user who never wants existing behaviour to change. *)
let always_old (_ : question) = Prefer_old
