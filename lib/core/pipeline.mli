(** Clarify's end-to-end workflow (the paper's Figure 1):

    classify the query → retrieve system prompt and few-shot examples →
    the LLM synthesizes one stanza in isolation → a second LLM call
    extracts a JSON behavioural spec → the stanza is verified against
    the spec (searchRoutePolicies / searchFilters) with counterexample
    feedback looping back to the LLM → the verified stanza is imported
    under fresh list names → the disambiguator binary-searches the
    insertion point with differential-example questions to the user. *)

type error =
  | Wrong_query_type of { expected : string; got : string }
  | Llm_error of string
  | Parse_error of string
  | Snippet_shape of string
  | Verification_exhausted of string list (* verdicts per attempt *)
  | Spec_error of string
  | Target_not_found of string
  | Disambiguation_failed of string

val error_to_string : error -> string

type route_map_report = {
  db : Config.Database.t; (* updated configuration *)
  map : Config.Route_map.t; (* updated target map *)
  spec : Engine.Spec.t;
  stanza : Config.Route_map.stanza; (* as inserted, post renaming *)
  renaming : (string * string) list;
  synthesis_attempts : int;
  verification_history : string list; (* one line per failed attempt *)
  llm_calls : int; (* calls consumed by this update *)
  questions : Disambiguator.question list;
  position : int;
  boundaries : int;
}

val default_max_attempts : int

val run_route_map_update :
  ?max_attempts:int ->
  ?mode:Disambiguator.mode ->
  llm:Llm.Mock_llm.t ->
  oracle:Disambiguator.oracle ->
  db:Config.Database.t ->
  target:string ->
  prompt:string ->
  unit ->
  (route_map_report, error) result
(** Run one incremental route-map update end to end. *)

type acl_report = {
  db : Config.Database.t;
  acl : Config.Acl.t;
  rule : Config.Acl.rule;
  synthesis_attempts : int;
  verification_history : string list;
  llm_calls : int;
  questions : Acl_disambiguator.question list;
  position : int;
  boundaries : int;
}

val run_acl_update :
  ?max_attempts:int ->
  ?mode:Acl_disambiguator.mode ->
  llm:Llm.Mock_llm.t ->
  oracle:Acl_disambiguator.oracle ->
  db:Config.Database.t ->
  target:string ->
  prompt:string ->
  unit ->
  (acl_report, error) result
(** Run one incremental ACL update end to end. For ACLs the parsed
    intent itself serves as the spec. *)

(** {2 Building blocks shared with the batch pipeline ({!Batch})}

    The synthesize-verify-repair loops and the flight-recorder event
    emitters, exposed so batch runs reuse the exact same LLM call
    sequence, repair behaviour and event schema as sequential runs. *)

val synthesis_loop :
  Llm.Mock_llm.t ->
  max_attempts:int ->
  entry:Llm.Prompt_db.entry ->
  prompt:string ->
  spec:Engine.Spec.t ->
  ( Config.Database.t * Config.Route_map.t * int * string list,
    error )
  result
(** The route-map verify-repair loop: [(snippet, map, attempts,
    verification history)] on success. *)

val acl_synthesis_loop :
  Llm.Mock_llm.t ->
  max_attempts:int ->
  entry:Llm.Prompt_db.entry ->
  prompt:string ->
  (Config.Acl.rule * int * string list, error) result
(** The ACL verify-repair loop; the parsed intent serves as spec. *)

val mode_to_string : Disambiguator.mode -> string
val acl_mode_to_string : Acl_disambiguator.mode -> string

val emit_placement : position:int -> boundaries:int -> questions:int -> unit

val runs_counter : Obs.Counter.t
val errors_counter : Obs.Counter.t
val llm_calls_counter : Obs.Counter.t
