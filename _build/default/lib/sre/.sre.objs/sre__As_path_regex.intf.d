lib/sre/as_path_regex.mli: Alphabet Format Regex
