test/test_bdd.ml: Alcotest Bdd Bvec Fun List Printf QCheck QCheck_alcotest Symbdd
