(** Cisco route-maps: ordered permit/deny stanzas with match and set
    clauses, evaluated first-match with an implicit trailing deny.
    Evaluation against a concrete route lives in {!Semantics} because
    match clauses refer to named ancillary lists. *)

type match_clause =
  | Match_prefix_list of string list (* OR across the named lists *)
  | Match_community of string list
  | Match_as_path of string list
  | Match_local_pref of int
  | Match_metric of int
  | Match_tag of int list (* OR across the listed tags *)

type set_clause =
  | Set_metric of int
  | Set_local_pref of int
  | Set_community of { communities : Bgp.Community.t list; additive : bool }
  | Set_comm_list_delete of string
  | Set_as_path_prepend of int list
  | Set_next_hop of Netaddr.Ipv4.t
  | Set_tag of int
  | Set_weight of int
  | Set_origin of Bgp.Route.origin

type stanza = {
  seq : int;
  action : Action.t;
  matches : match_clause list; (* AND across clauses *)
  sets : set_clause list; (* applied in order on permit *)
}

type t = { name : string; stanzas : stanza list (* ascending seq *) }

val make : string -> stanza list -> t
(** Sorts stanzas by sequence number.
    @raise Invalid_argument on duplicate sequence numbers. *)

val stanza :
  ?seq:int -> ?matches:match_clause list -> ?sets:set_clause list -> Action.t -> stanza

val next_seq : t -> int
val append : t -> stanza -> t

val resequence : t -> t
(** Renumber every stanza 10, 20, 30, ... preserving order. *)

val insert_at : t -> int -> stanza -> t
(** [insert_at t pos s] inserts [s] at position [pos] (0 = before
    everything, [List.length t.stanzas] = after everything) and
    resequences. @raise Invalid_argument when out of range. *)

val rename : t -> string -> t

val referenced_lists :
  t -> ([ `As_path_list | `Community_list | `Prefix_list ] * string) list
(** Names of ancillary lists referenced by match clauses and comm-list
    deletes, deduplicated and sorted. *)

val rename_references : t -> (string * string) list -> t
(** Rewrite every reference to a named list (used when a synthesized
    stanza's lists are imported under fresh names). *)

val string_of_match : match_clause -> string
val string_of_set : set_clause -> string
val pp_stanza : Format.formatter -> string -> stanza -> unit
val pp : Format.formatter -> t -> unit
