(** Cisco route-maps: ordered permit/deny stanzas with match and set
    clauses. Evaluation against a concrete route lives in {!Semantics}
    because match clauses refer to named ancillary lists. *)

type match_clause =
  | Match_prefix_list of string list (* OR across the named lists *)
  | Match_community of string list
  | Match_as_path of string list
  | Match_local_pref of int
  | Match_metric of int
  | Match_tag of int list (* OR across the listed tags *)

type set_clause =
  | Set_metric of int
  | Set_local_pref of int
  | Set_community of { communities : Bgp.Community.t list; additive : bool }
  | Set_comm_list_delete of string
  | Set_as_path_prepend of int list
  | Set_next_hop of Netaddr.Ipv4.t
  | Set_tag of int
  | Set_weight of int
  | Set_origin of Bgp.Route.origin

type stanza = {
  seq : int;
  action : Action.t;
  matches : match_clause list; (* AND across clauses *)
  sets : set_clause list; (* applied in order on permit *)
}

type t = { name : string; stanzas : stanza list (* ascending seq *) }

let make name stanzas =
  let sorted = List.sort (fun a b -> Int.compare a.seq b.seq) stanzas in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.seq = b.seq then
          invalid_arg
            (Printf.sprintf "Route_map.make: duplicate seq %d in %s" a.seq name)
        else check rest
    | _ -> ()
  in
  check sorted;
  { name; stanzas = sorted }

let stanza ?(seq = 0) ?(matches = []) ?(sets = []) action =
  { seq; action; matches; sets }

let next_seq t =
  match List.rev t.stanzas with [] -> 10 | last :: _ -> last.seq + 10

let append t s =
  let s = if s.seq = 0 then { s with seq = next_seq t } else s in
  make t.name (s :: t.stanzas)

(** Renumber every stanza 10, 20, 30, ... preserving order. *)
let resequence t =
  {
    t with
    stanzas = List.mapi (fun i s -> { s with seq = (i + 1) * 10 }) t.stanzas;
  }

(** Insert a stanza at position [pos] (0 = before everything); sequence
    numbers are reassigned by resequencing. *)
let insert_at t pos s =
  let n = List.length t.stanzas in
  if pos < 0 || pos > n then invalid_arg "Route_map.insert_at";
  let before = List.filteri (fun i _ -> i < pos) t.stanzas in
  let after = List.filteri (fun i _ -> i >= pos) t.stanzas in
  resequence { t with stanzas = before @ (s :: after) }

let rename t name = { t with name }

(** Names of ancillary lists referenced by the map's match clauses. *)
let referenced_lists t =
  let of_clause = function
    | Match_prefix_list names -> List.map (fun n -> (`Prefix_list, n)) names
    | Match_community names -> List.map (fun n -> (`Community_list, n)) names
    | Match_as_path names -> List.map (fun n -> (`As_path_list, n)) names
    | Match_local_pref _ | Match_metric _ | Match_tag _ -> []
  in
  let of_set = function
    | Set_comm_list_delete name -> [ (`Community_list, name) ]
    | _ -> []
  in
  List.concat_map
    (fun s -> List.concat_map of_clause s.matches @ List.concat_map of_set s.sets)
    t.stanzas
  |> List.sort_uniq Stdlib.compare

(** Rewrite every reference to a named list (used when inserting a
    synthesized stanza whose lists were renamed to avoid collisions). *)
let rename_references t (renaming : (string * string) list) =
  let rn n = match List.assoc_opt n renaming with Some n' -> n' | None -> n in
  let clause = function
    | Match_prefix_list names -> Match_prefix_list (List.map rn names)
    | Match_community names -> Match_community (List.map rn names)
    | Match_as_path names -> Match_as_path (List.map rn names)
    | (Match_local_pref _ | Match_metric _ | Match_tag _) as c -> c
  in
  let set = function
    | Set_comm_list_delete name -> Set_comm_list_delete (rn name)
    | s -> s
  in
  {
    t with
    stanzas =
      List.map
        (fun s ->
          { s with matches = List.map clause s.matches; sets = List.map set s.sets })
        t.stanzas;
  }

let string_of_match = function
  | Match_prefix_list names ->
      "match ip address prefix-list " ^ String.concat " " names
  | Match_community names -> "match community " ^ String.concat " " names
  | Match_as_path names -> "match as-path " ^ String.concat " " names
  | Match_local_pref n -> Printf.sprintf "match local-preference %d" n
  | Match_metric n -> Printf.sprintf "match metric %d" n
  | Match_tag tags ->
      "match tag " ^ String.concat " " (List.map string_of_int tags)

let string_of_set = function
  | Set_metric n -> Printf.sprintf "set metric %d" n
  | Set_local_pref n -> Printf.sprintf "set local-preference %d" n
  | Set_community { communities; additive } ->
      "set community "
      ^ String.concat " " (List.map Bgp.Community.to_string communities)
      ^ (if additive then " additive" else "")
  | Set_comm_list_delete name -> Printf.sprintf "set comm-list %s delete" name
  | Set_as_path_prepend asns ->
      "set as-path prepend " ^ String.concat " " (List.map string_of_int asns)
  | Set_next_hop ip -> "set ip next-hop " ^ Netaddr.Ipv4.to_string ip
  | Set_tag n -> Printf.sprintf "set tag %d" n
  | Set_weight n -> Printf.sprintf "set weight %d" n
  | Set_origin o -> "set origin " ^ Bgp.Route.origin_to_string o

let pp_stanza fmt name (s : stanza) =
  Format.fprintf fmt "@[<v>route-map %s %s %d" name (Action.to_string s.action)
    s.seq;
  List.iter (fun m -> Format.fprintf fmt "@  %s" (string_of_match m)) s.matches;
  List.iter (fun c -> Format.fprintf fmt "@  %s" (string_of_set c)) s.sets;
  Format.fprintf fmt "@]"

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt s ->
         pp_stanza fmt t.name s))
    t.stanzas
