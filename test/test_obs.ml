(* Tests for the observability layer (lib/obs) and its wiring through
   the Clarify pipeline: primitives first (counters, histograms, spans,
   sinks), then end-to-end assertions that a full [Pipeline.run_*]
   emits a span per stage and that the counters match the LLM calls,
   verification attempts and disambiguation questions the scenario
   forces. *)

module P = Clarify.Pipeline
module D = Clarify.Disambiguator
module Ad = Clarify.Acl_disambiguator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every test starts from a clean enabled registry and leaves the layer
   disabled, so test order cannot matter. *)
let with_obs f () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable f

let counter_value name =
  match Obs.Counter.find name with
  | Some c -> Obs.Counter.value c
  | None -> Alcotest.failf "counter %s is not registered" name

let span_paths () = List.map (fun s -> s.Obs.Span.path) (Obs.spans ())

(* ------------------------------------------------------------------ *)
(* Primitives                                                         *)
(* ------------------------------------------------------------------ *)

let test_counter_basics =
  with_obs @@ fun () ->
  let c = Obs.Counter.make "test.counter" in
  check_int "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr ~by:4 c;
  check_int "accumulates" 5 (Obs.Counter.value c);
  check_bool "make is idempotent" true (Obs.Counter.make "test.counter" == c);
  Obs.reset ();
  check_int "reset zeroes" 0 (Obs.Counter.value c);
  Obs.disable ();
  Obs.Counter.incr c;
  check_int "disabled incr is a no-op" 0 (Obs.Counter.value c)

let test_histogram_basics =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.hist" in
  List.iter (Obs.Histogram.observe_ns h) [ 500.; 5_000.; 2_000_000. ];
  check_int "count" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 2_005_500. (Obs.Histogram.sum_ns h);
  Alcotest.(check (float 1e-6)) "max" 2_000_000. (Obs.Histogram.max_ns h);
  (* 500ns lands in the <=1us bucket, 5us in <=10us, 2ms in <=10ms. *)
  let cum = Obs.Histogram.buckets h in
  check_int "first bucket" 1 (snd (List.nth cum 0));
  check_int "second bucket" 2 (snd (List.nth cum 1));
  check_int "last bucket is total" 3 (snd (List.nth cum (List.length cum - 1)))

let test_spans_nest =
  with_obs @@ fun () ->
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "inner" (fun () -> 21) * 2)
  in
  check_int "value passes through" 42 r;
  (match Obs.spans () with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner path" "outer.inner" inner.Obs.Span.path;
      check_int "inner depth" 1 inner.Obs.Span.depth;
      Alcotest.(check string) "outer path" "outer" outer.Obs.Span.path;
      check_int "outer depth" 0 outer.Obs.Span.depth;
      check_bool "children complete first" true
        (inner.Obs.Span.seq < outer.Obs.Span.seq)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  (* Span latencies are recorded as histograms named by the path. *)
  (match Obs.Histogram.find "outer.inner" with
  | Some h -> check_int "span histogram count" 1 (Obs.Histogram.count h)
  | None -> Alcotest.fail "no histogram for span path");
  (* A raising body still closes its span. *)
  (try Obs.with_span "outer" (fun () -> failwith "boom") with Failure _ -> ());
  check_int "span recorded on raise" 3 (List.length (Obs.spans ()))

let test_disabled_is_passthrough () =
  Obs.disable ();
  Obs.reset ();
  let r = Obs.with_span "ghost" (fun () -> 7) in
  check_int "value passes through" 7 r;
  check_int "no spans recorded" 0 (List.length (Obs.spans ()))

let test_sinks =
  with_obs @@ fun () ->
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Obs.set_sink (Obs.text_sink fmt);
  Obs.with_span "sinked" (fun () -> ());
  Format.pp_print_flush fmt ();
  Obs.set_sink Obs.silent;
  let text = Buffer.contents buf in
  check_bool "text sink mentions the span" true
    (String.length text > 0
    && String.length text >= String.length "sinked");
  let jbuf = Buffer.create 128 in
  (* json_sink is deprecated (unbounded Buffer) but not removed; this
     is its one remaining use, kept as coverage until deletion. *)
  let[@alert "-deprecated"] deprecated_sink = Obs.json_sink jbuf in
  Obs.set_sink deprecated_sink;
  Obs.with_span "jsonned" (fun () -> ());
  Obs.set_sink Obs.silent;
  match Json.parse (String.trim (Buffer.contents jbuf)) with
  | Error m -> Alcotest.failf "json sink line does not parse: %s" m
  | Ok j ->
      Alcotest.(check (option string))
        "path field" (Some "jsonned")
        (Option.bind (Json.member "path" j) Json.to_str)

(* The default clock must be wall-clock ([Unix.gettimeofday]), not
   [Sys.time]: a sleeping span consumes no CPU time, so under the old
   default its latency vanished from the histogram. *)
let test_default_clock_sees_sleep =
  with_obs @@ fun () ->
  Obs.with_span "sleepy" (fun () -> Unix.sleepf 0.05);
  match Obs.Histogram.find "sleepy" with
  | None -> Alcotest.fail "no histogram for sleepy span"
  | Some h ->
      check_int "one observation" 1 (Obs.Histogram.count h);
      check_bool "sleep time is visible (>= 40ms)" true
        (Obs.Histogram.sum_ns h >= 4e7)

(* Values landing exactly on the 1us/10us/.../10s bucket boundaries
   belong to the bucket they bound (slots are <= upper_bound), and
   anything beyond 10s lands in the +inf overflow bucket. *)
let test_histogram_bucket_edges =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.edges" in
  let bounds = [ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 ] in
  List.iter (Obs.Histogram.observe_ns h) bounds;
  Obs.Histogram.observe_ns h 2e10;
  (* beyond the last finite bound *)
  let cum = Obs.Histogram.buckets h in
  check_int "nine buckets" 9 (List.length cum);
  List.iteri
    (fun i (bound, c) ->
      if bound <> infinity then begin
        Alcotest.(check (float 0.)) "finite bound" (List.nth bounds i) bound;
        (* Cumulative count at bucket i includes exactly bounds 0..i. *)
        check_int (Printf.sprintf "cumulative at %g" bound) (i + 1) c
      end
      else check_int "overflow bucket holds the rest" 9 c)
    cum;
  Alcotest.(check (float 0.)) "max" 2e10 (Obs.Histogram.max_ns h)

let test_jsonl_sink =
  with_obs @@ fun () ->
  let path = Filename.temp_file "obs_spans" ".jsonl" in
  let oc = open_out path in
  Obs.set_sink (Obs.jsonl_sink oc);
  Obs.with_span "streamed" (fun () -> Obs.with_span "inner" (fun () -> ()));
  Obs.set_sink Obs.silent;
  close_out oc;
  let ic = open_in path in
  let lines = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let parsed =
    List.filter_map
      (fun l -> if String.trim l = "" then None else Some (Json.parse_exn l))
      (String.split_on_char '\n' lines)
  in
  check_int "one line per span" 2 (List.length parsed);
  Alcotest.(check (option string))
    "first line is the inner span (children close first)"
    (Some "streamed.inner")
    (Option.bind (Json.member "path" (List.hd parsed)) Json.to_str)

let test_current_path =
  with_obs @@ fun () ->
  Alcotest.(check string) "empty outside spans" "" (Obs.current_path ());
  Obs.with_span "a" (fun () ->
      Obs.with_span "b" (fun () ->
          Alcotest.(check string) "nested path" "a.b" (Obs.current_path ())));
  Alcotest.(check string) "empty again" "" (Obs.current_path ())

let test_snapshot_roundtrip =
  with_obs @@ fun () ->
  Obs.Counter.incr ~by:7 (Obs.Counter.make "test.rt.counter");
  let h = Obs.Histogram.make "test.rt.hist" in
  (* Edge values exercise every bucket including +inf in the buckets
     list, whose bound must survive the "inf" JSON encoding. *)
  List.iter (Obs.Histogram.observe_ns h) [ 1e3; 5e5; 2e10; 123.456 ];
  let snap = Obs.Snapshot.take () in
  let json_text = Json.to_string (Obs.Snapshot.to_json snap) in
  (match Result.bind (Json.parse json_text) Obs.Snapshot.of_json with
  | Error m -> Alcotest.failf "snapshot does not round-trip: %s" m
  | Ok snap' ->
      check_bool "snapshot |> to_json |> of_json identity" true
        (Obs.Snapshot.equal snap snap'));
  (* The snapshot only freezes non-zero aggregates. *)
  check_bool "counter present" true
    (List.mem_assoc "test.rt.counter" snap.Obs.Snapshot.counters);
  let hist = List.assoc "test.rt.hist" snap.Obs.Snapshot.histograms in
  check_int "hist count" 4 hist.Obs.Snapshot.count;
  Alcotest.(check (float 1e-6))
    "mean" (hist.Obs.Snapshot.sum_ns /. 4.)
    (Obs.Snapshot.mean_ns hist)

(* ------------------------------------------------------------------ *)
(* Labeled metrics                                                    *)
(* ------------------------------------------------------------------ *)

let test_labeled_counters =
  with_obs @@ fun () ->
  let c =
    Obs.Counter.labeled "test.lab" [ ("router", "R1"); ("phase", "sync") ]
  in
  Obs.Counter.incr ~by:3 c;
  Alcotest.(check string)
    "base name survives" "test.lab" (Obs.Counter.base_name c);
  Alcotest.(check string)
    "full name is prometheus-style"
    {|test.lab{phase="sync",router="R1"}|}
    (Obs.Counter.name c);
  check_bool "label order is canonicalized" true
    (Obs.Counter.labeled "test.lab" [ ("phase", "sync"); ("router", "R1") ]
    == c);
  check_bool "find_labeled resolves the series" true
    (match
       Obs.Counter.find_labeled "test.lab"
         [ ("router", "R1"); ("phase", "sync") ]
     with
    | Some c' -> c' == c
    | None -> false);
  check_bool "other label sets are distinct series" true
    (Obs.Counter.labeled "test.lab" [ ("router", "R2"); ("phase", "sync") ]
    != c);
  (* The unlabeled API is exactly the zero-label case. *)
  check_bool "labeled [] is make" true
    (Obs.Counter.labeled "test.lab.plain" [] == Obs.Counter.make "test.lab.plain");
  (* Values land in the labeled series, not the base family. *)
  check_int "labeled value" 3 (Obs.Counter.value c);
  check_bool "base family not registered by labeling" true
    (Obs.Counter.find "test.lab" = None);
  (* Reset drops labeled series (their cardinality is data-driven) but
     keeps zero-label registrations at zero. *)
  Obs.reset ();
  check_bool "labeled series dropped on reset" true
    (Obs.Counter.find_labeled "test.lab" [ ("router", "R1"); ("phase", "sync") ]
    = None);
  check_bool "zero-label registration survives reset" true
    (Obs.Counter.find "test.lab.plain" <> None)

(* Label values may contain the encoding's own metacharacters. *)
let test_label_escaping =
  with_obs @@ fun () ->
  let kvs = [ ("q", {|say "hi"|}); ("b", {|a\b|}) ] in
  let name = Obs.Labels.full_name "test.esc" kvs in
  Alcotest.(check string)
    "quotes and backslashes escaped"
    {|test.esc{b="a\\b",q="say \"hi\""}|}
    name;
  let c = Obs.Counter.labeled "test.esc" kvs in
  Obs.Counter.incr c;
  check_bool "registered under the escaped name" true
    (match Obs.Counter.find name with Some c' -> c' == c | None -> false)

(* Labeled series flow through snapshots as ordinary metrics with
   richer names, and the JSON round-trip preserves them — including a
   histogram whose overflow bucket bound is the "inf" encoding. *)
let test_labeled_snapshot_roundtrip =
  with_obs @@ fun () ->
  Obs.Counter.incr ~by:11
    (Obs.Counter.labeled "test.lsr.calls" [ ("endpoint", "classify") ]);
  Obs.Counter.incr ~by:2 (Obs.Counter.labeled "test.lsr.empty_value" [ ("k", "") ]);
  let h = Obs.Histogram.labeled "test.lsr.lat" [ ("router", "M") ] in
  (* 2e10 lands beyond the last finite bound: the +inf bucket must
     survive to_json/of_json via the "inf" string encoding. *)
  List.iter (Obs.Histogram.observe_ns h) [ 1e3; 2e10 ];
  let snap = Obs.Snapshot.take () in
  check_bool "labeled counter snapshotted under its full name" true
    (List.mem_assoc
       (Obs.Labels.full_name "test.lsr.calls" [ ("endpoint", "classify") ])
       snap.Obs.Snapshot.counters);
  (match
     Result.bind
       (Json.parse (Json.to_string (Obs.Snapshot.to_json snap)))
       Obs.Snapshot.of_json
   with
  | Error m -> Alcotest.failf "labeled snapshot does not round-trip: %s" m
  | Ok snap' ->
      check_bool "round-trip is the identity" true
        (Obs.Snapshot.equal snap snap');
      let hist =
        List.assoc
          (Obs.Labels.full_name "test.lsr.lat" [ ("router", "M") ])
          snap'.Obs.Snapshot.histograms
      in
      let inf_bound, inf_count =
        List.nth hist.Obs.Snapshot.buckets
          (List.length hist.Obs.Snapshot.buckets - 1)
      in
      check_bool "inf bound decoded" true (inf_bound = infinity);
      check_int "overflow observation survives" 2 inf_count)

(* Satellite audit: Obs.reset clears *every* piece of mutable state, so
   two back-to-back identical runs — under a deterministic clock —
   produce identical snapshots and identical span buffers. *)
let test_reset_determinism () =
  Obs.enable ();
  (* Whole-second ticks: small-integer differences are exact in
     floating point, so timings are bit-identical across the two runs
     even though each run starts from a different clock origin. *)
  let t = ref 0. in
  Obs.set_clock (fun () ->
      t := !t +. 1.;
      !t);
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock Unix.gettimeofday;
      Obs.disable ())
    (fun () ->
      let workload () =
        Obs.reset ();
        Obs.Counter.incr ~by:2 (Obs.Counter.make "test.det.plain");
        Obs.Counter.incr
          (Obs.Counter.labeled "test.det.lab" [ ("router", "R1") ]);
        Obs.Histogram.observe_ns (Obs.Histogram.make "test.det.hist") 5e4;
        Obs.with_span "det.outer" (fun () ->
            Obs.with_span "det.inner" (fun () -> ()));
        (try Obs.with_span "det.raising" (fun () -> failwith "boom")
         with Failure _ -> ());
        ( Obs.Snapshot.take (),
          List.map
            (fun s ->
              ( s.Obs.Span.path,
                s.Obs.Span.depth,
                s.Obs.Span.seq,
                s.Obs.Span.start_ns,
                s.Obs.Span.duration_ns ))
            (Obs.spans ()) )
      in
      let snap1, spans1 = workload () in
      let snap2, spans2 = workload () in
      check_bool "snapshots identical across runs" true
        (Obs.Snapshot.equal snap1 snap2);
      check_bool "span buffers identical across runs" true (spans1 = spans2);
      check_bool "runs actually recorded spans" true (spans1 <> []))

(* A crash can cut the jsonl stream anywhere, but because the sink
   flushes line by line, every line before the cut stays valid JSON:
   the damage is confined to at most the final line. *)
let test_jsonl_sink_partial_write =
  with_obs @@ fun () ->
  let path = Filename.temp_file "obs_partial" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.set_sink (Obs.jsonl_sink oc);
      Obs.with_span "p1" (fun () -> ());
      (* The line is flushed before the next span even starts: a reader
         sees it complete while the channel is still open. *)
      let flushed_early =
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        String.length s > 0 && s.[String.length s - 1] = '\n'
      in
      check_bool "line flushed while channel open" true flushed_early;
      Obs.with_span "p2" (fun () -> ());
      Obs.with_span "p3" (fun () -> ());
      Obs.set_sink Obs.silent;
      close_out oc;
      (* Simulate the crash: truncate mid final line. *)
      let ic = open_in path in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      let cut = String.length content - 9 in
      let oc = open_out path in
      output_string oc (String.sub content 0 cut);
      close_out oc;
      let ic = open_in path in
      let n = in_channel_length ic in
      let damaged = really_input_string ic n in
      close_in ic;
      let lines = String.split_on_char '\n' damaged in
      let complete, tail =
        match List.rev lines with
        | last :: rest -> (List.rev rest, last)
        | [] -> ([], "")
      in
      check_int "two complete lines survive" 2 (List.length complete);
      List.iter
        (fun l ->
          match Json.parse l with
          | Ok j ->
              check_bool "line has a span path" true
                (Json.member "path" j <> None)
          | Error m -> Alcotest.failf "surviving line damaged: %s" m)
        complete;
      check_bool "only the cut line is damaged" true
        (Result.is_error (Json.parse tail)))

let test_snapshot_json =
  with_obs @@ fun () ->
  Obs.Counter.incr ~by:3 (Obs.Counter.make "test.snapshot.events");
  Obs.with_span "snap" (fun () -> ());
  let j = Obs.to_json () in
  Alcotest.(check (option int))
    "counter in snapshot" (Some 3)
    (Option.bind
       (Option.bind (Json.member "counters" j)
          (Json.member "test.snapshot.events"))
       Json.to_int);
  let spans = Option.bind (Json.member "spans" j) Json.to_list in
  check_int "span in snapshot" 1 (List.length (Option.get spans))

(* ------------------------------------------------------------------ *)
(* Gauges                                                             *)
(* ------------------------------------------------------------------ *)

let check_float = Alcotest.(check (float 0.))

let test_gauge_basics =
  with_obs @@ fun () ->
  let g = Obs.Gauge.make "test.g.depth" in
  check_float "starts at zero" 0. (Obs.Gauge.value g);
  Obs.Gauge.set g 4.5;
  check_float "set" 4.5 (Obs.Gauge.value g);
  check_bool "make is idempotent" true (Obs.Gauge.make "test.g.depth" == g);
  let tick = ref 0. in
  let c = Obs.Gauge.collector "test.g.tick" (fun () -> !tick) in
  tick := 7.;
  check_float "collector samples at read" 7. (Obs.Gauge.value c);
  let flaky_up = ref true in
  let f =
    Obs.Gauge.collector "test.g.flaky" (fun () ->
        if !flaky_up then 3. else failwith "down")
  in
  check_float "collector while healthy" 3. (Obs.Gauge.value f);
  flaky_up := false;
  check_float "failing collector keeps last good sample" 3. (Obs.Gauge.value f);
  (* Reset zeroes pushed gauges but keeps collector registrations. *)
  Obs.reset ();
  check_float "reset zeroes pushed" 0. (Obs.Gauge.value g);
  check_float "reset keeps collectors" 7. (Obs.Gauge.value c);
  Obs.disable ();
  Obs.Gauge.set g 9.;
  check_float "disabled set is a no-op" 0. (Obs.Gauge.value g)

let test_gauge_sample_all_and_snapshot =
  with_obs @@ fun () ->
  Obs.Gauge.set (Obs.Gauge.make "test.g.a") 1.5;
  let all = Obs.Gauge.sample_all () in
  check_bool "sample_all sees the pushed gauge" true
    (List.assoc_opt "test.g.a" all = Some 1.5);
  check_bool "built-in GC collectors are registered" true
    (List.mem_assoc "runtime.gc.minor_collections" all);
  check_bool "live heap words are sampled" true
    (match List.assoc_opt "runtime.gc.live_words" all with
    | Some v -> v > 0.
    | None -> false);
  let snap = Obs.Snapshot.capture () in
  check_bool "snapshot carries gauges" true
    (List.assoc_opt "test.g.a" snap.Obs.Snapshot.gauges = Some 1.5);
  (match
     Result.bind
       (Json.parse (Json.to_string (Obs.Snapshot.to_json snap)))
       Obs.Snapshot.of_json
   with
  | Error m -> Alcotest.failf "gauge snapshot does not round-trip: %s" m
  | Ok snap' ->
      check_bool "gauge values survive the JSON round-trip" true
        (snap'.Obs.Snapshot.gauges = snap.Obs.Snapshot.gauges));
  (* Snapshots written before gauges existed still load. *)
  match
    Obs.Snapshot.of_json (Json.parse_exn {|{"counters": {}, "histograms": {}}|})
  with
  | Error m -> Alcotest.failf "pre-gauge snapshot rejected: %s" m
  | Ok s ->
      check_int "missing gauges key loads empty" 0
        (List.length s.Obs.Snapshot.gauges)

(* ------------------------------------------------------------------ *)
(* Sharded recording and the cardinality guard                        *)
(* ------------------------------------------------------------------ *)

(* The sharded hot path must merge losslessly: four domains hammering
   the same counter and histogram, no lock anywhere, exact totals after
   the domains are joined. *)
let test_sharded_exactness_across_domains =
  with_obs @@ fun () ->
  let c = Obs.Counter.make "test.shard.counter" in
  let h = Obs.Histogram.make "test.shard.hist" in
  let per_domain = 1000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Counter.incr c;
              Obs.Histogram.observe_ns h (float_of_int i)
            done))
  in
  List.iter Domain.join ds;
  Obs.Counter.incr c;
  check_int "no increment lost across 4 domains" ((4 * per_domain) + 1)
    (Obs.Counter.value c);
  check_int "histogram count exact" (4 * per_domain) (Obs.Histogram.count h);
  let cum = Obs.Histogram.buckets h in
  check_int "bucket totals exact" (4 * per_domain)
    (snd (List.nth cum (List.length cum - 1)))

(* Two domains racing to register the same (base, labels) must receive
   the same series — the lost-update variant would silently split the
   count across two registry entries. *)
let test_labeled_registration_race =
  with_obs @@ fun () ->
  let per_domain = 500 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let c = Obs.Counter.labeled "test.race" [ ("k", "v") ] in
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done;
            c))
  in
  let series = List.map Domain.join ds in
  (match series with
  | first :: rest ->
      List.iter
        (fun c -> check_bool "all domains got the same series" true (c == first))
        rest
  | [] -> assert false);
  match Obs.Counter.find_labeled "test.race" [ ("k", "v") ] with
  | None -> Alcotest.fail "raced series not registered"
  | Some c ->
      check_int "one series holds every increment" (4 * per_domain)
        (Obs.Counter.value c)

let test_cardinality_guard =
  with_obs @@ fun () ->
  let old = Obs.series_limit () in
  Fun.protect ~finally:(fun () -> Obs.set_series_limit old) @@ fun () ->
  Obs.set_series_limit 2;
  let c1 = Obs.Counter.labeled "test.card" [ ("k", "a") ] in
  let c2 = Obs.Counter.labeled "test.card" [ ("k", "b") ] in
  let c3 = Obs.Counter.labeled "test.card" [ ("k", "c") ] in
  let c4 = Obs.Counter.labeled "test.card" [ ("k", "d") ] in
  check_bool "within budget: distinct series" true (c1 != c2);
  check_bool "beyond budget: the overflow sink" true
    (Obs.Counter.labels c3 = Obs.overflow_labels);
  check_bool "every overflow registration shares the sink" true (c3 == c4);
  check_bool "budgeted sets still resolve" true
    (Obs.Counter.labeled "test.card" [ ("k", "a") ] == c1);
  Obs.Counter.incr ~by:5 c3;
  (match Obs.Counter.find_labeled "test.card" Obs.overflow_labels with
  | Some s ->
      check_bool "sink addressable explicitly" true (s == c3);
      check_int "sink absorbs overflow increments" 5 (Obs.Counter.value s)
  | None -> Alcotest.fail "overflow sink not registered");
  (* The budget is per base name, and gauges share the guard. *)
  check_bool "other bases unaffected" true
    (Obs.Counter.labels (Obs.Counter.labeled "test.card2" [ ("k", "c") ])
    <> Obs.overflow_labels);
  let g3 =
    List.map (fun v -> Obs.Gauge.labeled "test.cardg" [ ("k", v) ]) [ "a"; "b"; "c" ]
    |> fun l -> List.nth l 2
  in
  check_bool "gauge overflow collapses too" true
    (Obs.Gauge.labels g3 = Obs.overflow_labels)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                              *)
(* ------------------------------------------------------------------ *)

(* Exact-text golden over a hand-built snapshot: family grouping and
   ordering (counters, then gauges, then histograms, bases sorted),
   label escaping, the [_total] suffix, [+Inf] bucket bound, HELP
   wiring, and the trailing [# EOF]. *)
let test_prometheus_golden () =
  let labeled =
    Obs.Labels.full_name "p.calls" [ ("q", {|say "hi"|}); ("r", {|a\b|}) ]
  in
  let snap =
    {
      Obs.Snapshot.counters = [ ("a.z", 1); ("p.calls", 2); (labeled, 3) ];
      gauges =
        [
          ("g.depth", 4.5);
          (Obs.Labels.full_name "g.util" [ ("domain", "0") ], 1.);
        ];
      histograms =
        [
          ( "h.lat",
            {
              Obs.Snapshot.count = 2;
              sum_ns = 2600.5;
              max_ns = 2000.;
              buckets = [ (1000., 1); (infinity, 2) ];
            } );
        ];
    }
  in
  let expected =
    String.concat "\n"
      [
        {|# TYPE clarify_a_z_total counter|};
        {|clarify_a_z_total 1|};
        {|# HELP clarify_p_calls_total demo calls|};
        {|# TYPE clarify_p_calls_total counter|};
        {|clarify_p_calls_total 2|};
        {|clarify_p_calls_total{q="say \"hi\"",r="a\\b"} 3|};
        {|# TYPE clarify_g_depth gauge|};
        {|clarify_g_depth 4.5|};
        {|# TYPE clarify_g_util gauge|};
        {|clarify_g_util{domain="0"} 1|};
        {|# TYPE clarify_h_lat histogram|};
        {|clarify_h_lat_bucket{le="1000"} 1|};
        {|clarify_h_lat_bucket{le="+Inf"} 2|};
        {|clarify_h_lat_sum 2600.5|};
        {|clarify_h_lat_count 2|};
        {|# EOF|};
        "";
      ]
  in
  Alcotest.(check string)
    "exposition text" expected
    (Obs.Snapshot.to_prometheus ~help:[ ("p.calls", "demo calls") ] snap)

(* A captured snapshot's exposition parses back, and the parsed samples
   agree with the snapshot's own values — the sanity loop behind
   `clarify top`. *)
let test_prometheus_scrape_roundtrip =
  with_obs @@ fun () ->
  Obs.Counter.incr ~by:7 (Obs.Counter.make "test.prt.calls");
  Obs.Counter.incr ~by:3
    (Obs.Counter.labeled "test.prt.calls" [ ("endpoint", "x") ]);
  let h = Obs.Histogram.make "test.prt.lat" in
  List.iter (Obs.Histogram.observe_ns h) [ 500.; 2e10 ];
  let snap = Obs.Snapshot.capture () in
  let text = Obs.Snapshot.to_prometheus ~help:(Obs.help_index ()) snap in
  match Obs_serve.Scrape.parse text with
  | Error m -> Alcotest.failf "exposition does not parse: %s" m
  | Ok scrape ->
      let value metric labels =
        match
          List.find_opt
            (fun s ->
              s.Obs_serve.Scrape.metric = metric
              && s.Obs_serve.Scrape.labels = labels)
            scrape.Obs_serve.Scrape.samples
        with
        | Some s -> s.Obs_serve.Scrape.value
        | None -> Alcotest.failf "sample %s missing from scrape" metric
      in
      check_float "plain counter value" 7.
        (value "clarify_test_prt_calls_total" []);
      check_float "labeled counter value" 3.
        (value "clarify_test_prt_calls_total" [ ("endpoint", "x") ]);
      check_float "histogram count" 2. (value "clarify_test_prt_lat_count" []);
      check_float "overflow bucket" 2.
        (value "clarify_test_prt_lat_bucket" [ ("le", "+Inf") ]);
      check_float "histogram sum" (2e10 +. 500.)
        (value "clarify_test_prt_lat_sum" []);
      Alcotest.(check (option string))
        "counter TYPE declared" (Some "counter")
        (List.assoc_opt "clarify_test_prt_calls_total"
           scrape.Obs_serve.Scrape.types);
      Alcotest.(check (option string))
        "histogram TYPE declared" (Some "histogram")
        (List.assoc_opt "clarify_test_prt_lat" scrape.Obs_serve.Scrape.types);
      (* Every snapshot counter has a corresponding parsed sample. *)
      check_bool "scrape covers the snapshot" true
        (List.length scrape.Obs_serve.Scrape.samples
        >= List.length snap.Obs.Snapshot.counters)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_metrics_server_smoke =
  with_obs @@ fun () ->
  Obs.Counter.incr ~by:2 (Obs.Counter.make "test.srv.hits");
  match Obs_serve.Server.start ~port:0 () with
  | Error m -> Alcotest.failf "server did not start: %s" m
  | Ok server ->
      Fun.protect ~finally:(fun () -> Obs_serve.Server.stop server)
      @@ fun () ->
      let port = Obs_serve.Server.port server in
      check_bool "picked a real port" true (port > 0);
      (match Obs_serve.Scrape.fetch ~port "/metrics" with
      | Error m -> Alcotest.failf "fetch failed: %s" m
      | Ok body -> (
          check_bool "body carries the counter" true
            (contains body "clarify_test_srv_hits_total 2");
          check_bool "body carries a gauge family" true
            (contains body "# TYPE clarify_runtime_gc_minor_collections gauge");
          match Obs_serve.Scrape.parse body with
          | Error m -> Alcotest.failf "served text does not parse: %s" m
          | Ok scrape ->
              check_bool "samples served" true
                (scrape.Obs_serve.Scrape.samples <> [])));
      (match Obs_serve.Scrape.fetch ~port "/nope" with
      | Ok _ -> Alcotest.fail "unknown path should not answer 200"
      | Error _ -> ());
      (* stop is idempotent: the Fun.protect finalizer stops again. *)
      Obs_serve.Server.stop server

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                               *)
(* ------------------------------------------------------------------ *)

let parse_ok src =
  match Config.Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

let isp_db () = parse_ok Evaluation.E1_running_example.isp_out_config

let run_e1 ?(faults = []) () =
  let llm = Llm.Mock_llm.create ~faults () in
  match
    P.run_route_map_update ~llm ~oracle:D.always_new ~db:(isp_db ())
      ~target:"ISP_OUT" ~prompt:Evaluation.E1_running_example.prompt ()
  with
  | Ok report -> report
  | Error e -> Alcotest.failf "pipeline: %s" (P.error_to_string e)

let route_map_stage_spans =
  [
    "pipeline.route_map_update";
    "pipeline.route_map_update.classify";
    "pipeline.route_map_update.spec_extract";
    "pipeline.route_map_update.synthesize";
    "pipeline.route_map_update.synthesize.llm";
    "pipeline.route_map_update.synthesize.verify";
    "pipeline.route_map_update.import";
    "pipeline.route_map_update.disambiguate";
    "pipeline.route_map_update.disambiguate.find_boundaries";
  ]

let test_pipeline_emits_stage_spans =
  with_obs @@ fun () ->
  let _report = run_e1 () in
  let paths = span_paths () in
  List.iter
    (fun stage ->
      check_bool ("span " ^ stage) true (List.mem stage paths))
    route_map_stage_spans;
  (* BDD nodes are hash-consed process-wide, so fresh allocations are
     only guaranteed on the first pipeline run in the binary — which is
     this test. *)
  check_bool "bdd allocations counted" true
    (counter_value "bdd.nodes_allocated" > 0)

let test_pipeline_counters_clean_run =
  with_obs @@ fun () ->
  let report = run_e1 () in
  (* The paper's single-pass run: one call per LLM endpoint. *)
  check_int "classify calls" 1 (counter_value "llm.calls.classify");
  check_int "spec calls" 1 (counter_value "llm.calls.spec");
  check_int "synthesize calls" 1 (counter_value "llm.calls.synthesize");
  check_int "pipeline llm calls" report.P.llm_calls
    (counter_value "pipeline.llm_calls");
  check_int "runs" 1 (counter_value "pipeline.runs");
  check_int "errors" 0 (counter_value "pipeline.errors");
  check_int "synthesis attempts" report.P.synthesis_attempts
    (counter_value "pipeline.synthesis_attempts");
  check_int "verification attempts" 1
    (counter_value "pipeline.verification_attempts");
  check_int "counterexample loops" 0
    (counter_value "pipeline.counterexample_loops");
  check_int "questions" (List.length report.P.questions)
    (counter_value "disambiguator.questions");
  check_int "boundaries" report.P.boundaries
    (counter_value "disambiguator.boundaries");
  check_int "binary probes equal questions"
    (counter_value "disambiguator.questions")
    (counter_value "disambiguator.binary_search.probes");
  (* The E1 target overlaps the new stanza, so disambiguation is real. *)
  check_bool "scenario forces questions" true
    (List.length report.P.questions > 0);
  check_bool "verifier ran" true
    (counter_value "engine.search_route_policies.solver_calls" >= 1);
  (* Boundary discovery goes through the batch incremental sweep: one
     call, one shared context, the remaining positions served from it. *)
  check_bool "differ ran" true
    (counter_value "engine.adjacent_insertions.calls" >= 1);
  check_bool "incremental sweep compiled once" true
    (counter_value "engine.adjacent_insertions.contexts_built" >= 1);
  check_bool "prefix cells reused" true
    (counter_value "engine.adjacent_insertions.prefix_cells_reused" >= 1)

let test_pipeline_counters_faulty_run =
  with_obs @@ fun () ->
  let report = run_e1 ~faults:[ Llm.Fault_injector.Flip_action ] () in
  check_int "two attempts" 2 report.P.synthesis_attempts;
  check_int "attempts counter" 2 (counter_value "pipeline.synthesis_attempts");
  check_int "verification ran twice" 2
    (counter_value "pipeline.verification_attempts");
  check_int "one counterexample loop" 1
    (counter_value "pipeline.counterexample_loops");
  check_int "one fault injected" 1 (counter_value "llm.faults.injected");
  check_int "per-class fault counter" 1
    (counter_value
       (Obs.Labels.full_name "llm.faults.injected"
          [ ("class", "flip-action") ]))

let fw_config =
  {|ip access-list extended LAB_EDGE
 deny tcp any any eq 23
 permit tcp 10.20.0.0/16 any
 permit udp 10.20.0.0/16 any eq 53
 deny udp any any
 permit icmp 10.20.0.0/16 any|}

let test_acl_pipeline_spans_and_counters =
  with_obs @@ fun () ->
  let llm = Llm.Mock_llm.create () in
  let report =
    match
      P.run_acl_update ~llm
        ~oracle:(fun _ -> Ad.Prefer_new)
        ~db:(parse_ok fw_config)
        ~target:"LAB_EDGE"
        ~prompt:
          "Write an access list rule that denies tcp traffic from \
           10.20.0.0/16 to any destination with destination port 22."
        ()
    with
    | Ok report -> report
    | Error e -> Alcotest.failf "pipeline: %s" (P.error_to_string e)
  in
  let paths = span_paths () in
  List.iter
    (fun stage -> check_bool ("span " ^ stage) true (List.mem stage paths))
    [
      "pipeline.acl_update";
      "pipeline.acl_update.classify";
      "pipeline.acl_update.spec_extract";
      "pipeline.acl_update.synthesize";
      "pipeline.acl_update.synthesize.llm";
      "pipeline.acl_update.synthesize.verify";
      "pipeline.acl_update.disambiguate";
      "pipeline.acl_update.disambiguate.find_boundaries";
    ];
  check_int "acl questions" (List.length report.P.questions)
    (counter_value "acl_disambiguator.questions");
  check_int "acl boundaries" report.P.boundaries
    (counter_value "acl_disambiguator.boundaries");
  check_int "verification attempts" 1
    (counter_value "pipeline.verification_attempts");
  check_bool "searchFilters ran" true
    (counter_value "engine.search_filters.solver_calls" >= 1);
  check_bool "acl boundary sweep ran" true
    (counter_value "engine.adjacent_insertions.calls" >= 1)

let test_disabled_pipeline_records_nothing () =
  Obs.disable ();
  Obs.reset ();
  let _report = run_e1 () in
  check_int "no spans" 0 (List.length (Obs.spans ()));
  check_int "no counters"
    0
    (counter_value "pipeline.runs" + counter_value "llm.calls.synthesize")

let test_report_renders =
  with_obs @@ fun () ->
  let _report = run_e1 () in
  let text = Format.asprintf "%a" Obs.pp_report () in
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and tl = String.length text in
        let rec go i =
          i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
        in
        go 0
      in
      check_bool ("report mentions " ^ needle) true contains)
    [
      "pipeline.runs";
      "disambiguator.questions";
      "pipeline.route_map_update.disambiguate";
      "llm.calls.synthesize";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "primitives",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
          Alcotest.test_case "spans nest" `Quick test_spans_nest;
          Alcotest.test_case "disabled passthrough" `Quick
            test_disabled_is_passthrough;
          Alcotest.test_case "sinks" `Quick test_sinks;
          Alcotest.test_case "json snapshot" `Quick test_snapshot_json;
          Alcotest.test_case "default clock sees sleep" `Quick
            test_default_clock_sees_sleep;
          Alcotest.test_case "histogram bucket edges" `Quick
            test_histogram_bucket_edges;
          Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
          Alcotest.test_case "current path" `Quick test_current_path;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_snapshot_roundtrip;
        ] );
      ( "labels",
        [
          Alcotest.test_case "labeled counters" `Quick test_labeled_counters;
          Alcotest.test_case "label escaping" `Quick test_label_escaping;
          Alcotest.test_case "labeled snapshot round-trip" `Quick
            test_labeled_snapshot_roundtrip;
          Alcotest.test_case "reset determinism" `Quick
            test_reset_determinism;
          Alcotest.test_case "jsonl sink partial write" `Quick
            test_jsonl_sink_partial_write;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "sample_all and snapshot" `Quick
            test_gauge_sample_all_and_snapshot;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "exact across domains" `Quick
            test_sharded_exactness_across_domains;
          Alcotest.test_case "labeled registration race" `Quick
            test_labeled_registration_race;
          Alcotest.test_case "cardinality guard" `Quick test_cardinality_guard;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "golden text" `Quick test_prometheus_golden;
          Alcotest.test_case "scrape round-trip" `Quick
            test_prometheus_scrape_roundtrip;
          Alcotest.test_case "metrics server" `Quick test_metrics_server_smoke;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "stage spans" `Quick test_pipeline_emits_stage_spans;
          Alcotest.test_case "counters (clean run)" `Quick
            test_pipeline_counters_clean_run;
          Alcotest.test_case "counters (faulty run)" `Quick
            test_pipeline_counters_faulty_run;
          Alcotest.test_case "acl pipeline" `Quick
            test_acl_pipeline_spans_and_counters;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_pipeline_records_nothing;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
    ]
