(** Machinery shared by the three insertion disambiguators
    ({!Disambiguator} for route-maps, {!Acl_disambiguator},
    {!Prefix_list_disambiguator}).

    Each instance keeps its own question type; the helpers here work
    through a {!view} rendering, so the "question"/"probe" telemetry
    schema and the binary-search structure exist in exactly one
    place. *)

type answer = Prefer_new | Prefer_old

val answer_to_string : answer -> string
(** ["new"] / ["old"], as recorded in telemetry and given to
    [clarify replay]. *)

(** A question as the flight recorder sees it: instances render their
    route / packet / prefix example and the two candidate behaviours to
    strings. *)
type view = {
  position : int;
  boundary_seq : int;
  example : string;
  if_new_first : string;
  if_old_first : string;
}

val asker :
  subsystem:string ->
  counter:Obs.Counter.t ->
  view:('q -> view) ->
  oracle:('q -> answer) ->
  (unit -> 'q list) * ('q -> answer)
(** [asker ~subsystem ~counter ~view ~oracle] is [(asked, ask)]: [ask]
    records the question, bumps [counter], consults the oracle and
    emits one [kind="question"] event; [asked ()] lists the questions
    asked so far, oldest first. *)

val binary_search :
  subsystem:string ->
  probes:Obs.Counter.t ->
  ask:('q -> answer) ->
  'q array ->
  int
(** The paper's Section 4 search over a monotone boundary array: the
    index of the first boundary answered [Prefer_new], or the array
    length when every answer was [Prefer_old]. Emits one
    [kind="probe"] event and bumps [probes] per iteration. *)

val monotone : ('q * answer) list -> bool
(** Linear-mode consistency: no [Prefer_old] after a [Prefer_new]. *)

val first_new_position :
  default:int -> position:('q -> int) -> ('q * answer) list -> int
(** The placement a monotone answer list implies: the position of the
    first [Prefer_new] question, else [default]. *)

val scripted : answer list -> 'q -> answer
(** Answers drawn from a fixed list; raises [Failure] when
    exhausted. *)

(** Shared answer cache for batch runs ({!Batch}). Keys include the
    policy name and the question's (position, boundary_seq) pair in
    addition to the rendered text, so two identical-text questions from
    different intents against different policies or positions are never
    silently merged. *)
module Answer_cache : sig
  type t

  val create : unit -> t

  val find : t -> policy:string -> view -> answer option
  (** Cached answer for an identical earlier question, if any; counts a
      hit. *)

  val add : t -> policy:string -> view -> answer -> unit

  val hits : t -> int
  (** Questions served from the cache so far. *)

  val cached :
    t -> policy:string -> view:('q -> view) -> ('q -> answer) -> 'q -> answer
  (** [cached t ~policy ~view oracle] behaves like [oracle] but serves
      repeated questions from the cache without consulting it again. *)
end
