let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let pfx = Netaddr.Prefix.of_string_exn
let comm = Bgp.Community.of_string_exn

(* ------------------------------------------------------------------ *)
(* Community                                                          *)
(* ------------------------------------------------------------------ *)

let test_community_parse () =
  check "roundtrip" true
    (Bgp.Community.to_string (comm "300:3") = "300:3");
  check "max halves" true (Bgp.Community.of_string "65535:65535" <> None);
  List.iter
    (fun s -> check ("reject " ^ s) true (Bgp.Community.of_string s = None))
    [ ""; "300"; "300:"; ":3"; "a:b"; "65536:1"; "1:65536"; "-1:2"; "1:2:3" ]

let test_community_well_known () =
  check_str "no-export" "65535:65281"
    (Bgp.Community.to_string Bgp.Community.no_export);
  check_str "no-advertise" "65535:65282"
    (Bgp.Community.to_string Bgp.Community.no_advertise)

let test_community_order () =
  check "ordering" true (Bgp.Community.compare (comm "1:9") (comm "2:0") < 0);
  check "value tiebreak" true
    (Bgp.Community.compare (comm "1:1") (comm "1:2") < 0);
  check "equal" true (Bgp.Community.equal (comm "1:1") (comm "1:1"))

let prop_community_roundtrip =
  QCheck.Test.make ~name:"community string roundtrip" ~count:300
    QCheck.(pair (int_range 0 65535) (int_range 0 65535))
    (fun (a, b) ->
      let c = Bgp.Community.make a b in
      Bgp.Community.of_string (Bgp.Community.to_string c) = Some c)

(* ------------------------------------------------------------------ *)
(* Route                                                              *)
(* ------------------------------------------------------------------ *)

let test_route_defaults () =
  let r = Bgp.Route.make (pfx "10.0.0.0/8") in
  check_int "local pref" 100 r.Bgp.Route.local_pref;
  check_int "metric" 0 r.Bgp.Route.metric;
  check_int "weight" 0 r.Bgp.Route.weight;
  check "empty path" true (r.Bgp.Route.as_path = []);
  check "no communities" true (r.Bgp.Route.communities = []);
  check_str "next hop" "0.0.0.1" (Netaddr.Ipv4.to_string r.Bgp.Route.next_hop);
  check "origin igp" true (r.Bgp.Route.origin = Bgp.Route.Igp)

let test_route_community_set_semantics () =
  let r =
    Bgp.Route.make ~communities:[ comm "2:2"; comm "1:1"; comm "2:2" ]
      (pfx "10.0.0.0/8")
  in
  (* Normalized: sorted, deduplicated. *)
  check "sorted dedup" true (r.Bgp.Route.communities = [ comm "1:1"; comm "2:2" ]);
  let r2 = Bgp.Route.add_communities r [ comm "0:9"; comm "1:1" ] in
  check "additive" true
    (r2.Bgp.Route.communities = [ comm "0:9"; comm "1:1"; comm "2:2" ]);
  let r3 = Bgp.Route.delete_communities r2 (fun c -> Bgp.Community.to_pair c = (1, 1)) in
  check "delete" true (r3.Bgp.Route.communities = [ comm "0:9"; comm "2:2" ]);
  check "has" true (Bgp.Route.has_community r2 (comm "0:9"));
  check "has not" false (Bgp.Route.has_community r3 (comm "1:1"))

let test_route_prepend () =
  let r = Bgp.Route.make ~as_path:[ 100 ] (pfx "10.0.0.0/8") in
  let r' = Bgp.Route.prepend_as_path r [ 65000; 65000 ] in
  Alcotest.(check (list int)) "prepended" [ 65000; 65000; 100 ] r'.Bgp.Route.as_path

let test_route_pp_paper_style () =
  (* The differential examples in the paper render these fields. *)
  let r =
    Bgp.Route.make ~as_path:[ 32 ] ~communities:[ comm "300:3" ]
      (pfx "100.0.0.0/16")
  in
  let s = Format.asprintf "%a" Bgp.Route.pp r in
  List.iter
    (fun needle ->
      check ("contains " ^ needle) true
        (let rec find i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || find (i + 1))
         in
         find 0))
    [
      "Network: 100.0.0.0/16"; "AS Path: [32]"; "Communities: [\"300:3\"]";
      "Local Preference: 100"; "Metric: 0"; "Next Hop IP: 0.0.0.1";
      "Tag: 0"; "Weight: 0";
    ]

let prop_route_community_ops_normalized =
  QCheck.Test.make ~name:"community operations keep the set normalized"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 5) (pair (int_range 0 10) (int_range 0 10)))
           (list_size (int_range 0 5) (pair (int_range 0 10) (int_range 0 10)))))
    (fun (cs1, cs2) ->
      let mk = List.map (fun (a, b) -> Bgp.Community.make a b) in
      let r = Bgp.Route.make ~communities:(mk cs1) (pfx "10.0.0.0/8") in
      let r' = Bgp.Route.add_communities r (mk cs2) in
      let sorted l = List.sort_uniq Bgp.Community.compare l = l in
      sorted r.Bgp.Route.communities && sorted r'.Bgp.Route.communities)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "bgp"
    [
      ( "community",
        [
          Alcotest.test_case "parse" `Quick test_community_parse;
          Alcotest.test_case "well-known" `Quick test_community_well_known;
          Alcotest.test_case "ordering" `Quick test_community_order;
          q prop_community_roundtrip;
        ] );
      ( "route",
        [
          Alcotest.test_case "defaults" `Quick test_route_defaults;
          Alcotest.test_case "community set semantics" `Quick
            test_route_community_set_semantics;
          Alcotest.test_case "prepend" `Quick test_route_prepend;
          Alcotest.test_case "paper-style rendering" `Quick
            test_route_pp_paper_style;
          q prop_route_community_ops_normalized;
        ] );
    ]
