(** A parsed configuration: named collections of every construct. *)

module Smap : Map.S with type key = string

type t = {
  prefix_lists : Prefix_list.t Smap.t;
  community_lists : Community_list.t Smap.t;
  as_path_lists : As_path_list.t Smap.t;
  route_maps : Route_map.t Smap.t;
  acls : Acl.t Smap.t;
}

val empty : t
val add_prefix_list : t -> Prefix_list.t -> t
val add_community_list : t -> Community_list.t -> t
val add_as_path_list : t -> As_path_list.t -> t
val add_route_map : t -> Route_map.t -> t
val add_acl : t -> Acl.t -> t
val prefix_list : t -> string -> Prefix_list.t option
val community_list : t -> string -> Community_list.t option
val as_path_list : t -> string -> As_path_list.t option
val route_map : t -> string -> Route_map.t option
val acl : t -> string -> Acl.t option
val route_maps : t -> Route_map.t list
val acls : t -> Acl.t list

val all_names : t -> string list
(** Every defined name across all construct kinds (with duplicates when
    a name is reused across kinds). *)

val merge : t -> t -> t
(** Right-biased union: definitions in the second database shadow
    same-name definitions in the first. *)

val undefined_references :
  t ->
  Route_map.t ->
  ([ `As_path_list | `Community_list | `Prefix_list ] * string) list
(** List references in the route-map that the database does not define —
    LLM output loves to hallucinate list names. *)

val pp : Format.formatter -> t -> unit
