(** Line-oriented parser for the Cisco IOS subset used by the paper:
    prefix-lists, community-lists, as-path access-lists, route-maps and
    extended ACLs. *)

exception Syntax_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Syntax_error { line; message })) fmt

let () =
  Printexc.register_printer (function
    | Syntax_error { line; message } ->
        Some (Printf.sprintf "Syntax error on line %d: %s" line message)
    | _ -> None)

type state = {
  mutable prefix_entries : (string * Prefix_list.entry) list; (* reversed *)
  mutable community_entries :
    (string * [ `Standard | `Expanded ] * Action.t * string) list;
  mutable as_path_entries : (string * Action.t * string) list;
  mutable stanzas : (string * Route_map.stanza) list;
  mutable acl_rules : (string * Acl.rule) list;
  mutable acl_auto_seq : (string, int) Hashtbl.t;
  (* The construct that subsequent indented lines attach to. *)
  mutable context : context;
}

and context =
  | Ctx_none
  | Ctx_route_map of string * int (* map name, stanza seq *)
  | Ctx_acl of string

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let int_arg ln what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail ln "expected %s, found %S" what s

let action_arg ln s =
  match Action.of_string s with
  | Some a -> a
  | None -> fail ln "expected permit or deny, found %S" s

let prefix_arg ln s =
  match Netaddr.Prefix.of_string s with
  | Some p -> p
  | None -> fail ln "expected prefix a.b.c.d/len, found %S" s

let ipv4_arg ln s =
  match Netaddr.Ipv4.of_string s with
  | Some a -> a
  | None -> fail ln "expected IPv4 address, found %S" s

(* "10.0.0.0/8 le 24" / "ge 24 le 28" modifiers. *)
let parse_prefix_range ln toks =
  match toks with
  | pfx :: rest ->
      let prefix = prefix_arg ln pfx in
      let rec mods ge le = function
        | [] -> (ge, le)
        | "ge" :: v :: rest -> mods (Some (int_arg ln "ge bound" v)) le rest
        | "le" :: v :: rest -> mods ge (Some (int_arg ln "le bound" v)) rest
        | t :: _ -> fail ln "unexpected token %S after prefix" t
      in
      let ge, le = mods None None rest in
      (try Netaddr.Prefix_range.make prefix ~ge ~le
       with Invalid_argument m -> fail ln "%s" m)
  | [] -> fail ln "missing prefix"

(* ACL address specs: any | host A | A W | A/len. *)
let parse_addr_spec ln toks =
  match toks with
  | "any" :: rest -> (Acl.Any, rest)
  | "host" :: ip :: rest -> (Acl.Host (ipv4_arg ln ip), rest)
  | spec :: rest when String.contains spec '/' ->
      (Acl.addr_of_prefix (prefix_arg ln spec), rest)
  | base :: wild :: rest
    when Netaddr.Ipv4.of_string base <> None
         && Netaddr.Ipv4.of_string wild <> None ->
      (Acl.Wildcard (ipv4_arg ln base, ipv4_arg ln wild), rest)
  | t :: _ -> fail ln "expected address spec, found %S" t
  | [] -> fail ln "missing address spec"

let parse_port_spec ln toks =
  match toks with
  | "eq" :: p :: rest -> (Acl.Eq (int_arg ln "port" p), rest)
  | "neq" :: p :: rest -> (Acl.Neq (int_arg ln "port" p), rest)
  | "lt" :: p :: rest -> (Acl.Lt (int_arg ln "port" p), rest)
  | "gt" :: p :: rest -> (Acl.Gt (int_arg ln "port" p), rest)
  | "range" :: a :: b :: rest ->
      (Acl.Range (int_arg ln "port" a, int_arg ln "port" b), rest)
  | _ -> (Acl.Any_port, toks)

let parse_acl_rule ln st name toks =
  let seq, toks =
    match toks with
    | s :: rest when int_of_string_opt s <> None -> (int_of_string s, rest)
    | _ ->
        let next =
          match Hashtbl.find_opt st.acl_auto_seq name with
          | Some n -> n + 10
          | None -> 10
        in
        (next, toks)
  in
  Hashtbl.replace st.acl_auto_seq name seq;
  match toks with
  | act :: proto :: rest ->
      let action = action_arg ln act in
      let protocol =
        match Packet.protocol_of_string proto with
        | Some p -> p
        | None -> fail ln "unknown protocol %S" proto
      in
      let src, rest = parse_addr_spec ln rest in
      let src_port, rest = parse_port_spec ln rest in
      let dst, rest = parse_addr_spec ln rest in
      let dst_port, rest = parse_port_spec ln rest in
      let established, rest =
        match rest with
        | "established" :: rest -> (true, rest)
        | _ -> (false, rest)
      in
      if rest <> [] then
        fail ln "unexpected trailing tokens: %s" (String.concat " " rest);
      if
        (src_port <> Acl.Any_port || dst_port <> Acl.Any_port)
        && not (Packet.has_ports protocol)
      then fail ln "port specifiers require tcp or udp";
      if established && protocol <> Packet.Tcp then
        fail ln "established requires tcp";
      st.acl_rules <-
        (name, { (Acl.rule ~seq ~protocol ~src ~src_port ~dst ~dst_port
                    ~established action) with Acl.seq })
        :: st.acl_rules
  | _ -> fail ln "truncated ACL rule"

let parse_match_clause ln toks =
  match toks with
  | "ip" :: "address" :: "prefix-list" :: names when names <> [] ->
      Route_map.Match_prefix_list names
  | "community" :: names when names <> [] -> Route_map.Match_community names
  | "as-path" :: names when names <> [] -> Route_map.Match_as_path names
  | [ "local-preference"; n ] ->
      Route_map.Match_local_pref (int_arg ln "local-preference" n)
  | [ "metric"; n ] -> Route_map.Match_metric (int_arg ln "metric" n)
  | "tag" :: tags when tags <> [] ->
      Route_map.Match_tag (List.map (int_arg ln "tag") tags)
  | _ -> fail ln "unsupported match clause: match %s" (String.concat " " toks)

let community_arg ln s =
  match Bgp.Community.of_string s with
  | Some c -> c
  | None -> fail ln "expected community a:b, found %S" s

let parse_set_clause ln toks =
  match toks with
  | [ "metric"; n ] -> Route_map.Set_metric (int_arg ln "metric" n)
  | [ "local-preference"; n ] ->
      Route_map.Set_local_pref (int_arg ln "local-preference" n)
  | "community" :: rest when rest <> [] ->
      let additive, comms =
        match List.rev rest with
        | "additive" :: comms_rev -> (true, List.rev comms_rev)
        | _ -> (false, rest)
      in
      if comms = [] then fail ln "set community needs at least one community";
      Route_map.Set_community
        { communities = List.map (community_arg ln) comms; additive }
  | [ "comm-list"; name; "delete" ] -> Route_map.Set_comm_list_delete name
  | "as-path" :: "prepend" :: asns when asns <> [] ->
      Route_map.Set_as_path_prepend (List.map (int_arg ln "asn") asns)
  | [ "ip"; "next-hop"; ip ] -> Route_map.Set_next_hop (ipv4_arg ln ip)
  | [ "tag"; n ] -> Route_map.Set_tag (int_arg ln "tag" n)
  | [ "weight"; n ] -> Route_map.Set_weight (int_arg ln "weight" n)
  | [ "origin"; o ] ->
      Route_map.Set_origin
        (match o with
        | "igp" -> Bgp.Route.Igp
        | "egp" -> Bgp.Route.Egp
        | "incomplete" -> Bgp.Route.Incomplete
        | _ -> fail ln "unknown origin %S" o)
  | _ -> fail ln "unsupported set clause: set %s" (String.concat " " toks)

let parse_line st ln line =
  match tokens_of_line line with
  | [] -> ()
  | "!" :: _ -> st.context <- Ctx_none
  | "ip" :: "prefix-list" :: name :: rest ->
      st.context <- Ctx_none;
      let seq, rest =
        match rest with
        | "seq" :: n :: rest -> (Some (int_arg ln "seq" n), rest)
        | _ -> (None, rest)
      in
      (match rest with
      | act :: rest ->
          let action = action_arg ln act in
          let range = parse_prefix_range ln rest in
          let seq =
            match seq with
            | Some s -> s
            | None ->
                (* Auto-sequence: 10 past the highest existing. *)
                List.fold_left
                  (fun acc (n, (e : Prefix_list.entry)) ->
                    if n = name then max acc (e.seq + 10) else acc)
                  10 st.prefix_entries
          in
          st.prefix_entries <-
            (name, Prefix_list.entry ~seq ~action range) :: st.prefix_entries
      | [] -> fail ln "truncated prefix-list entry")
  | "ip" :: "community-list" :: rest ->
      st.context <- Ctx_none;
      let kind, name, rest =
        match rest with
        | "standard" :: name :: rest -> (`Standard, name, rest)
        | "expanded" :: name :: rest -> (`Expanded, name, rest)
        | name :: rest -> (`Standard, name, rest)
        | [] -> fail ln "truncated community-list"
      in
      (match rest with
      | act :: body when body <> [] ->
          let action = action_arg ln act in
          st.community_entries <-
            (name, kind, action, String.concat " " body)
            :: st.community_entries
      | _ -> fail ln "truncated community-list entry")
  | "ip" :: "as-path" :: "access-list" :: name :: act :: regex when regex <> []
    ->
      st.context <- Ctx_none;
      let action = action_arg ln act in
      st.as_path_entries <-
        (name, action, String.concat " " regex) :: st.as_path_entries
  | [ "route-map"; name; act; seq ] ->
      let action = action_arg ln act in
      let seq = int_arg ln "sequence number" seq in
      st.stanzas <- (name, Route_map.stanza ~seq action) :: st.stanzas;
      st.context <- Ctx_route_map (name, seq)
  | [ "ip"; "access-list"; "extended"; name ] -> st.context <- Ctx_acl name
  | "access-list" :: num :: rest when int_of_string_opt num <> None ->
      st.context <- Ctx_none;
      parse_acl_rule ln st num rest
  | "match" :: rest -> (
      match st.context with
      | Ctx_route_map (name, seq) ->
          let clause = parse_match_clause ln rest in
          st.stanzas <-
            List.map
              (fun (n, (s : Route_map.stanza)) ->
                if n = name && s.seq = seq then
                  (n, { s with matches = s.matches @ [ clause ] })
                else (n, s))
              st.stanzas
      | _ -> fail ln "match clause outside a route-map stanza")
  | "set" :: rest -> (
      match st.context with
      | Ctx_route_map (name, seq) ->
          let clause = parse_set_clause ln rest in
          st.stanzas <-
            List.map
              (fun (n, (s : Route_map.stanza)) ->
                if n = name && s.seq = seq then
                  (n, { s with sets = s.sets @ [ clause ] })
                else (n, s))
              st.stanzas
      | _ -> fail ln "set clause outside a route-map stanza")
  | (("permit" | "deny") :: _ | _ :: ("permit" | "deny") :: _) as toks -> (
      match st.context with
      | Ctx_acl name -> parse_acl_rule ln st name toks
      | _ -> fail ln "ACL rule outside an access-list block")
  | t :: _ -> fail ln "unrecognized directive %S" t

let group_by_name pairs =
  (* Stable grouping preserving insertion order of both keys and values. *)
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      if not (Hashtbl.mem tbl name) then begin
        order := name :: !order;
        Hashtbl.add tbl name []
      end;
      Hashtbl.replace tbl name (v :: Hashtbl.find tbl name))
    (List.rev pairs);
  List.rev_map (fun name -> (name, List.rev (Hashtbl.find tbl name))) !order
  |> List.rev

let finalize st =
  let db = ref Database.empty in
  List.iter
    (fun (name, entries) ->
      db := Database.add_prefix_list !db (Prefix_list.make name entries))
    (group_by_name st.prefix_entries);
  List.iter
    (fun (name, entries) ->
      let kinds = List.map (fun (k, _, _) -> k) entries in
      let cl =
        match List.sort_uniq Stdlib.compare kinds with
        | [ `Standard ] ->
            Community_list.standard name
              (List.map
                 (fun (_, action, body) ->
                   {
                     Community_list.action;
                     communities =
                       List.map Bgp.Community.of_string_exn
                         (tokens_of_line body);
                   })
                 entries)
        | [ `Expanded ] ->
            Community_list.expanded name
              (List.map (fun (_, action, body) -> (action, body)) entries)
        | _ ->
            invalid_arg
              (Printf.sprintf
                 "community-list %s mixes standard and expanded entries" name)
      in
      db := Database.add_community_list !db cl)
    (group_by_name
       (List.map (fun (n, k, a, b) -> (n, (k, a, b))) st.community_entries));
  List.iter
    (fun (name, entries) ->
      db := Database.add_as_path_list !db (As_path_list.make name entries))
    (group_by_name
       (List.map (fun (n, a, r) -> (n, (a, r))) st.as_path_entries));
  List.iter
    (fun (name, stanzas) ->
      db := Database.add_route_map !db (Route_map.make name stanzas))
    (group_by_name st.stanzas);
  List.iter
    (fun (name, rules) -> db := Database.add_acl !db (Acl.make name rules))
    (group_by_name st.acl_rules);
  !db

let parse_exn source =
  let st =
    {
      prefix_entries = [];
      community_entries = [];
      as_path_entries = [];
      stanzas = [];
      acl_rules = [];
      acl_auto_seq = Hashtbl.create 8;
      context = Ctx_none;
    }
  in
  List.iteri
    (fun i line -> parse_line st (i + 1) line)
    (String.split_on_char '\n' source);
  finalize st

let parse source =
  match parse_exn source with
  | db -> Ok db
  | exception Syntax_error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message)
  | exception Sre.As_path_regex.Parse_error m ->
      Error ("as-path regex: " ^ m)
  | exception Sre.Community_regex.Parse_error m ->
      Error ("community regex: " ^ m)
  | exception Invalid_argument m -> Error m

let to_string db = Format.asprintf "@[<v>%a@]" Database.pp db
