(** The paper's evaluation topology (Figure 3), inspired by a Lightyear
    example: two border routers R1 and R2 peering with ISP1 and ISP2, a
    management router M and a datacenter router DC both dual-homed to
    R1 and R2. The datacenter and management networks reuse the same
    private prefix, which must stay mutually invisible. *)

let pfx = Netaddr.Prefix.of_string_exn
let ip = Netaddr.Ipv4.of_string_exn

(* AS numbers *)
let asn_isp1 = 100
let asn_isp2 = 200
let asn_r1 = 65001
let asn_r2 = 65002
let asn_m = 65003
let asn_dc = 65004

(* Prefixes *)
let service_prefix = pfx "10.1.0.0/16" (* the special datacenter service *)
let dc_internal = pfx "10.2.0.0/16"
let mgmt_internal = pfx "10.3.0.0/16"
let reused_prefix = pfx "192.168.100.0/24" (* originated by both DC and M *)
let isp1_prefix = pfx "60.0.0.0/8"
let isp2_prefix = pfx "70.0.0.0/8"

(* Communities marking where a route entered our network. *)
let from_isp1_community = Bgp.Community.make 65000 100
let from_isp2_community = Bgp.Community.make 65000 200

let bogons =
  [
    pfx "0.0.0.0/8";
    pfx "10.0.0.0/8";
    pfx "127.0.0.0/8";
    pfx "169.254.0.0/16";
    pfx "172.16.0.0/12";
    pfx "192.168.0.0/16";
    pfx "224.0.0.0/4";
  ]

(** The route-map names each router's sessions reference; the
    incremental-synthesis evaluation fills these maps in one stanza at a
    time, and {!reference} contains hand-written versions. *)
let r1_maps =
  [ "R1_FROM_ISP1"; "R1_TO_ISP1"; "R1_FROM_DC"; "R1_FROM_M"; "R1_TO_M" ]

let r2_maps =
  [ "R2_FROM_ISP2"; "R2_TO_ISP2"; "R2_FROM_DC"; "R2_FROM_M"; "R2_TO_M" ]

let m_maps = [ "M_FROM_R1"; "M_FROM_R2"; "M_TO_R1"; "M_TO_R2" ]

(** Build the topology around the given per-router configurations. An
    empty-stanza route-map is behaviourally "deny everything" (implicit
    deny), so chains may reference maps that are still being built. *)
let topology ~r1_config ~r2_config ~m_config ~dc_config =
  let open Topology in
  make
    [
      router "ISP1" ~asn:asn_isp1 ~router_ip:(ip "1.1.1.1")
        ~originated:[ isp1_prefix ]
        ~neighbors:[ neighbor "R1" ];
      router "ISP2" ~asn:asn_isp2 ~router_ip:(ip "2.2.2.2")
        ~originated:[ isp2_prefix ]
        ~neighbors:[ neighbor "R2" ];
      router "R1" ~asn:asn_r1 ~router_ip:(ip "10.0.1.1") ~config:r1_config
        ~neighbors:
          [
            neighbor "ISP1" ~import:[ "R1_FROM_ISP1" ] ~export:[ "R1_TO_ISP1" ];
            neighbor "DC" ~import:[ "R1_FROM_DC" ];
            neighbor "M" ~import:[ "R1_FROM_M" ] ~export:[ "R1_TO_M" ];
            neighbor "R2";
          ];
      router "R2" ~asn:asn_r2 ~router_ip:(ip "10.0.2.1") ~config:r2_config
        ~neighbors:
          [
            neighbor "ISP2" ~import:[ "R2_FROM_ISP2" ] ~export:[ "R2_TO_ISP2" ];
            neighbor "DC" ~import:[ "R2_FROM_DC" ];
            neighbor "M" ~import:[ "R2_FROM_M" ] ~export:[ "R2_TO_M" ];
            neighbor "R1";
          ];
      router "M" ~asn:asn_m ~router_ip:(ip "10.0.3.1") ~config:m_config
        ~originated:[ mgmt_internal; reused_prefix ]
        ~neighbors:
          [
            neighbor "R1" ~import:[ "M_FROM_R1" ] ~export:[ "M_TO_R1" ];
            neighbor "R2" ~import:[ "M_FROM_R2" ] ~export:[ "M_TO_R2" ];
          ];
      router "DC" ~asn:asn_dc ~router_ip:(ip "10.0.4.1") ~config:dc_config
        ~originated:[ service_prefix; dc_internal; reused_prefix ]
        ~neighbors:[ neighbor "R1"; neighbor "R2" ];
    ]

(* When a chain references a map that does not exist yet, Topology.make
   rejects it; during incremental construction we install empty
   placeholder maps first. *)
let placeholder_maps names =
  List.fold_left
    (fun db name ->
      Config.Database.add_route_map db (Config.Route_map.make name []))
    Config.Database.empty names

(* ------------------------------------------------------------------ *)
(* Hand-written reference configuration implementing the five global
   policies (used as ground truth by tests and by the intent-driven
   oracle in the evaluation).                                          *)
(* ------------------------------------------------------------------ *)

let reference_border ~maps:(from_isp, to_isp, from_dc, from_m, to_m)
    ~own_community ~other_community () =
  let src =
    Printf.sprintf
      {|
ip prefix-list BOGONS seq 10 permit 0.0.0.0/8 le 32
ip prefix-list BOGONS seq 20 permit 10.0.0.0/8 le 32
ip prefix-list BOGONS seq 30 permit 127.0.0.0/8 le 32
ip prefix-list BOGONS seq 40 permit 169.254.0.0/16 le 32
ip prefix-list BOGONS seq 50 permit 172.16.0.0/12 le 32
ip prefix-list BOGONS seq 60 permit 192.168.0.0/16 le 32
ip prefix-list BOGONS seq 70 permit 224.0.0.0/4 le 32
ip prefix-list REUSED seq 10 permit 192.168.0.0/16 le 32
ip prefix-list SERVICE seq 10 permit 10.1.0.0/16
ip community-list expanded OTHER_ISP permit _%s_
route-map %s deny 10
 match ip address prefix-list BOGONS
route-map %s permit 20
 set community %s additive
route-map %s deny 10
 match ip address prefix-list BOGONS
route-map %s deny 20
 match community OTHER_ISP
route-map %s permit 30
route-map %s permit 10
 match ip address prefix-list SERVICE
route-map %s deny 20
 match ip address prefix-list REUSED
route-map %s permit 30
route-map %s deny 10
 match ip address prefix-list REUSED
route-map %s permit 20
route-map %s deny 10
 match ip address prefix-list REUSED
route-map %s permit 20
|}
      (Bgp.Community.to_string other_community)
      from_isp from_isp
      (Bgp.Community.to_string own_community)
      to_isp to_isp to_isp from_dc from_dc from_dc from_m from_m to_m to_m
  in
  match Config.Parser.parse src with
  | Ok db -> db
  | Error m -> failwith ("Figure3.reference_border: " ^ m)

let reference_m () =
  let src =
    {|
ip prefix-list SERVICE seq 10 permit 10.1.0.0/16
ip prefix-list REUSED seq 10 permit 192.168.0.0/16 le 32
route-map M_FROM_R1 permit 10
 match ip address prefix-list SERVICE
 set local-preference 200
route-map M_FROM_R1 deny 20
 match ip address prefix-list REUSED
route-map M_FROM_R1 permit 30
route-map M_FROM_R2 deny 10
 match ip address prefix-list REUSED
route-map M_FROM_R2 permit 20
route-map M_TO_R1 deny 10
 match ip address prefix-list REUSED
route-map M_TO_R1 permit 20
route-map M_TO_R2 deny 10
 match ip address prefix-list REUSED
route-map M_TO_R2 permit 20
|}
  in
  match Config.Parser.parse src with
  | Ok db -> db
  | Error m -> failwith ("Figure3.reference_m: " ^ m)

let reference () =
  let r1_config =
    reference_border
      ~maps:("R1_FROM_ISP1", "R1_TO_ISP1", "R1_FROM_DC", "R1_FROM_M", "R1_TO_M")
      ~own_community:from_isp1_community ~other_community:from_isp2_community
      ()
  in
  let r2_config =
    reference_border
      ~maps:("R2_FROM_ISP2", "R2_TO_ISP2", "R2_FROM_DC", "R2_FROM_M", "R2_TO_M")
      ~own_community:from_isp2_community ~other_community:from_isp1_community
      ()
  in
  topology ~r1_config ~r2_config ~m_config:(reference_m ())
    ~dc_config:Config.Database.empty
