(** Process-wide observability: counters, latency histograms, gauges
    and hierarchical spans with pluggable sinks, plus pull-based
    Prometheus/OpenMetrics exposition.

    The registry is global and zero-dependency (monotonic-ish time via a
    pluggable clock, [Unix.gettimeofday] by default). Instrumented code
    pays a single [if enabled] branch per event while the layer is
    disabled, so it is safe to leave instrumentation in hot paths;
    recording only happens after {!enable}.

    Recording is sharded per domain: each series keeps one private
    shard per domain that touches it ([Domain.DLS]), so counter
    increments and histogram observations never take a lock and never
    race between domains. Reads merge the shards lazily — exact once
    worker domains are joined, best-effort (racy-but-safe stale reads)
    while they run, which is what live scrapes want.

    Naming scheme (see DESIGN.md §Observability): counters and spans are
    dot-separated, [<subsystem>.<event>], e.g. [llm.calls.synthesize],
    [pipeline.verification_attempts], [bdd.nodes_allocated]. Span
    latencies are recorded automatically as histograms named by the full
    span path, e.g. [pipeline.route_map_update.disambiguate]. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val subscribe_state : (bool -> unit) -> unit
(** [subscribe_state f] calls [f] immediately with the current state and
    again on every {!enable}/{!disable} transition. Used to wire
    external hooks (e.g. the BDD allocation hook) so that they cost
    nothing while the layer is off. *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (seconds, monotonically non-decreasing).
    Default: [Unix.gettimeofday] — wall-clock, so span latencies include
    time spent blocked or sleeping (CPU time would hide it). Tests
    substitute a deterministic clock. *)

val now : unit -> float
(** The current reading of the (pluggable) clock, in seconds. The flight
    recorder stamps events with it so a deterministic test clock makes
    event timestamps deterministic too. *)

val reset : unit -> unit
(** Zero every counter, histogram and pushed gauge, drop dynamically
    created labeled series, drop recorded spans (and the overflow
    count, sequence counter and open-span stack) and re-anchor the span
    start-offset origin. Zero-label metric registrations, gauge
    collectors, sinks, subscribers and the enabled state are kept. *)

val series_limit : unit -> int
(** The cardinality guard: the maximum number of labeled series one
    base name may register. Initialized from [CLARIFY_OBS_SERIES_LIMIT]
    (default 256). Beyond the limit, new label sets collapse into the
    per-base [{overflow="true"}] sink series. *)

val set_series_limit : int -> unit
(** Set the per-base labeled-series budget (clamped to [>= 1]). Applies
    to registrations made after the call. *)

val overflow_labels : (string * string) list
(** The label set of the cardinality-overflow sink series,
    [[("overflow", "true")]]. Registering it explicitly addresses the
    sink directly; it is exempt from the series budget. *)

(** Metric dimensions. A label set is a list of [key, value] pairs
    (canonically sorted by key); a labeled metric is registered under
    [name{k="v",...}], so the unlabeled API is exactly the zero-label
    case and labeled series flow through snapshots, reports and the
    bench diff as ordinary metrics with richer names. *)
module Labels : sig
  type t = (string * string) list

  val canon : (string * string) list -> t
  (** Sort by key. *)

  val encode : t -> string
  (** The empty string for the empty set, [{k="v",k2="v2"}] otherwise,
      with double quotes and backslashes escaped inside values. *)

  val full_name : string -> t -> string
  (** [full_name base labels = base ^ encode labels]. *)

  val parse : string -> string * t
  (** Inverse of {!full_name} on well-formed full names; a name that
      does not parse is returned unchanged with no labels. *)
end

(** Monotonic event counters. *)
module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or look up) the counter with this name. [make] is
      idempotent: a second call with the same name returns the same
      counter. Equivalent to [labeled name []]. *)

  val labeled : ?help:string -> string -> (string * string) list -> t
  (** [labeled base kvs] registers (or looks up) one series of the
      [base] family per distinct label set. Idempotent per label set,
      and atomic under concurrent registration: two domains racing on
      the same (base, labels) receive the same series. The label list
      is canonicalized, so order does not matter. Once the per-base
      budget ({!series_limit}) is spent, further label sets all resolve
      to the [{overflow="true"}] sink series. *)

  val incr : ?by:int -> t -> unit
  (** No-op while the layer is disabled. Lock-free: writes this
      domain's private shard of the series. *)

  val value : t -> int
  (** Sum over all shards. Exact when no other domain is concurrently
      incrementing; otherwise a best-effort (never torn) live read. *)

  val name : t -> string
  (** The full registered name, labels encoded. *)

  val base_name : t -> string
  val labels : t -> Labels.t
  val find : string -> t option
  val find_labeled : string -> (string * string) list -> t option
end

(** Latency histograms over fixed exponential buckets of nanoseconds
    (1us, 10us, ..., 10s, +inf). Sharded per domain like counters. *)
module Histogram : sig
  type t

  val make : ?help:string -> string -> t
  (** Idempotent, like {!Counter.make}. *)

  val labeled : ?help:string -> string -> (string * string) list -> t
  (** One series per label set, like {!Counter.labeled}. *)

  val observe_ns : t -> float -> unit
  (** No-op while the layer is disabled. Lock-free, like
      {!Counter.incr}. *)

  val count : t -> int
  val sum_ns : t -> float
  val max_ns : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_bound_ns, cumulative_count)] pairs; the last upper bound
      is [infinity]. *)

  val name : t -> string
  val base_name : t -> string
  val labels : t -> Labels.t
  val find : string -> t option
  val find_labeled : string -> (string * string) list -> t option
end

(** Point-in-time samples: pushed with {!Gauge.set} or pulled from a
    collector closure on every read. Built-in collectors sample GC
    pressure ([runtime.gc.*]); [lib/parallel] and the engine register
    pool-occupancy and BDD-manager collectors. Gauges appear in
    snapshots and exposition but are excluded from {!Snapshot.equal}
    (they are ambient state, not run state). *)
module Gauge : sig
  type t

  val make : ?help:string -> string -> t
  (** Idempotent, like {!Counter.make}. *)

  val labeled : ?help:string -> string -> (string * string) list -> t
  (** One series per label set, like {!Counter.labeled}, under the same
      cardinality guard. *)

  val collector : ?help:string -> string -> (unit -> float) -> t
  (** [collector name f] registers a gauge whose value is [f ()] at
      every read. A raising collector keeps the last good sample. *)

  val set : t -> float -> unit
  (** No-op while the layer is disabled (collectors sample anyway). *)

  val value : t -> float
  val name : t -> string
  val base_name : t -> string
  val labels : t -> Labels.t
  val find : string -> t option
  val find_labeled : string -> (string * string) list -> t option

  val sample_all : unit -> (string * float) list
  (** Every registered gauge, sampled, sorted by full name. *)
end

(** A completed span. *)
module Span : sig
  type t = {
    path : string; (* dotted path including enclosing spans *)
    depth : int; (* 0 = root *)
    start_ns : float; (* begin offset from the origin of the last reset *)
    duration_ns : float;
    seq : int; (* completion order, 0-based since last reset *)
  }
end

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. While disabled this is
    exactly [f ()]. While enabled the span nests under the innermost
    open span, its duration is recorded (also into a histogram named by
    the span path) and it is forwarded to the current sink — including
    when [f] raises. *)

val spans : unit -> Span.t list
(** Completed spans since the last {!reset}, in completion order. The
    buffer is capped; [dropped_spans] counts the overflow. *)

val current_path : unit -> string
(** The dotted path of the innermost open span, or [""] when no span is
    open (or the layer is disabled). Used by the flight recorder to
    correlate events with span latencies. *)

val dropped_spans : unit -> int

(** Where completed spans are streamed. *)
type sink = { on_span : Span.t -> unit }

val silent : sink
(** The default: spans are recorded in the buffer but not streamed. *)

val text_sink : Format.formatter -> sink
(** One indented line per span as it completes (children close before
    their parents, as in any close-order trace). *)

val json_sink : Buffer.t -> sink
[@@alert deprecated
  "Obs.json_sink grows an unbounded in-memory Buffer; use jsonl_sink \
   with an out_channel instead."]
(** @deprecated One compact JSON object per line per span (JSONL), into
    an in-memory buffer. The buffer grows without bound; use
    {!jsonl_sink} instead. *)

val jsonl_sink : out_channel -> sink
(** One compact JSON object per line per span (JSONL), streamed to a
    channel and flushed after every span, so long runs spill to disk
    instead of growing an unbounded buffer and a crash loses at most
    the open spans. *)

val tee : sink -> sink -> sink
(** [tee a b] forwards each span to [a] then [b]. *)

val set_sink : sink -> unit

val add_sink : sink -> unit
(** [add_sink s] composes [s] onto the current sink with {!tee}, so
    e.g. the flight recorder can capture spans without displacing a
    trace printer the user asked for. *)

val pp_duration : Format.formatter -> float -> unit
(** Nanoseconds rendered with a human unit (ns/us/ms/s). *)

val pp_report : Format.formatter -> unit -> unit
(** The full snapshot: every non-zero counter, every gauge, then
    per-span-path latency aggregates (count, total, mean, max), then
    any other non-empty histogram. *)

val to_json : unit -> Json.t
(** The same snapshot as a JSON object: [{"counters": {...},
    "gauges": {...}, "histograms": {...}, "spans": [...]}]. *)

val help_index : unit -> (string * string) list
(** Base metric name -> help text for every registered family that
    declared one, sorted by base name. Feeds the [# HELP] lines of
    {!Snapshot.to_prometheus}. *)

(** A frozen copy of the registry's aggregates, serializable to the
    stable schema used by bench snapshots ([BENCH.json]), compared by
    [clarify obs diff], and renderable as Prometheus text for the
    [/metrics] endpoint. *)
module Snapshot : sig
  type hist = {
    count : int;
    sum_ns : float;
    max_ns : float;
    buckets : (float * int) list;
        (** [(upper_bound_ns, cumulative_count)]; the overflow bound is
            [infinity], encoded in JSON as the string ["inf"]. *)
  }

  type t = {
    counters : (string * int) list; (* sorted by name, non-zero only *)
    gauges : (string * float) list; (* sorted by name, every series *)
    histograms : (string * hist) list;
  }

  val capture : unit -> t
  (** Freeze every non-zero counter, every gauge (collectors sampled
      now) and every non-empty histogram, merging per-domain shards. *)

  val take : unit -> t
  (** Alias of {!capture} (the pre-sharding name). *)

  val mean_ns : hist -> float

  val equal : t -> t -> bool
  (** Counters and histograms only: gauges are point-in-time samples
      and would break the serial-vs-parallel determinism gates. *)

  val to_json : t -> Json.t

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json}: [of_json (to_json s) = Ok s]. Snapshots
      written before gauges existed load with [gauges = []]. *)

  val to_prometheus : ?help:(string * string) list -> t -> string
  (** Render the snapshot in the Prometheus text exposition format
      (version 0.0.4, with a trailing [# EOF] line). Metric names gain
      a [clarify_] prefix with non-alphanumerics mapped to [_];
      counters gain the [_total] suffix; histograms render cumulative
      [_bucket{le="..."}] series (the overflow bound as [+Inf]) plus
      [_sum]/[_count]. Families are emitted counters-gauges-histograms,
      each sorted by base name, series in full-name order, so the
      rendering is deterministic for a given snapshot. [help] maps base
      names to [# HELP] text (see {!help_index}). *)
end
