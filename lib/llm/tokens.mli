(** Deterministic token and cost accounting for the simulated LLM.

    Estimates use the chars/4 heuristic so that a given prompt costs
    the same number of tokens on every run — recordings, replays and
    committed goldens must agree. Costs use flat per-token USD prices
    in the range of frontier-API pricing; only their ratio and
    stability matter. *)

val estimate : string -> int
(** [ceil (length / 4)]; 0 for the empty string. *)

val estimate_request :
  system:string ->
  few_shot:(string * string) list ->
  user:string ->
  int
(** Sum of {!estimate} over every part of a chat request. *)

val prompt_token_cost : float
(** USD per prompt token. *)

val completion_token_cost : float
(** USD per completion token. *)

val cost : prompt_tokens:int -> completion_tokens:int -> float
(** Estimated USD for one call (or one aggregated total). *)

val account :
  endpoint:string -> prompt_tokens:int -> completion_tokens:int -> unit
(** Add to the labeled counters [llm.tokens.prompt{endpoint="..."}] and
    [llm.tokens.completion{endpoint="..."}]. Endpoints in use:
    [classify], [synthesize], [spec], [placement]. *)
