open Config
module D = Clarify.Disambiguator
module Ad = Clarify.Acl_disambiguator
module P = Clarify.Pipeline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pfx = Netaddr.Prefix.of_string_exn
let comm = Bgp.Community.of_string_exn

let parse_ok src =
  match Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

let isp_out_config =
  {|
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
|}

let paper_prompt =
  "Write a route-map stanza that permits routes containing the prefix \
   100.0.0.0/16 with mask length less than or equal to 23 and tagged with \
   the community 300:3. Their MED value should be set to 55."

(* Figure 2(a): the new stanza first. *)
let fig2a_config =
  {|
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT permit 10
 match community D2
 match ip address prefix-list D3
 set metric 55
route-map ISP_OUT deny 20
 match as-path D0
route-map ISP_OUT deny 30
 match ip address prefix-list D1
route-map ISP_OUT permit 40
 match local-preference 300
|}

(* Figure 2(b): the new stanza last. *)
let fig2b_config =
  {|
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
route-map ISP_OUT permit 40
 match community D2
 match ip address prefix-list D3
 set metric 55
|}

let semantics_of config =
  let db = parse_ok config in
  let rm = Option.get (Database.route_map db "ISP_OUT") in
  fun route -> Semantics.eval_route_map db rm route

(* ------------------------------------------------------------------ *)
(* Naming                                                             *)
(* ------------------------------------------------------------------ *)

let test_fresh_names () =
  let db = parse_ok isp_out_config in
  (* D0 and D1 are taken. *)
  Alcotest.(check (list string))
    "skips taken names" [ "D2"; "D3" ]
    (Clarify.Naming.fresh_names db 2)

let test_import_snippet () =
  let db = parse_ok isp_out_config in
  let snippet =
    parse_ok
      {|
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
|}
  in
  let rm = Option.get (Database.route_map snippet "SET_METRIC") in
  match Clarify.Naming.import_route_map_snippet ~db ~snippet rm with
  | Error m -> Alcotest.fail m
  | Ok { db = db'; stanza; renaming } ->
      (* Lists land under D2/D3 exactly as in the paper's Figure 2. *)
      check "renaming covers both lists" true (List.length renaming = 2);
      check "D2 defined" true
        (Database.community_list db' "D2" <> None
        || Database.prefix_list db' "D2" <> None);
      check "D3 defined" true
        (Database.community_list db' "D3" <> None
        || Database.prefix_list db' "D3" <> None);
      (* The stanza references only fresh names. *)
      let refs =
        Route_map.referenced_lists (Route_map.make "TMP" [ stanza ])
      in
      check "no stale references" true
        (List.for_all (fun (_, n) -> n = "D2" || n = "D3") refs)

(* ------------------------------------------------------------------ *)
(* Disambiguation on the paper's example                              *)
(* ------------------------------------------------------------------ *)

(* Build the imported stanza for the paper's update. *)
let imported_paper_stanza () =
  let db = parse_ok isp_out_config in
  let snippet =
    parse_ok
      {|
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
|}
  in
  let rm = Option.get (Database.route_map snippet "SET_METRIC") in
  match Clarify.Naming.import_route_map_snippet ~db ~snippet rm with
  | Ok { db = db'; stanza; _ } ->
      (db', Option.get (Database.route_map db' "ISP_OUT"), stanza)
  | Error m -> Alcotest.fail m

let test_boundaries_found () =
  let db, target, stanza = imported_paper_stanza () in
  let bs = D.boundaries ~db ~target stanza in
  (* Overlaps with stanza 10 (as-path deny) and stanza 30 (local-pref
     permit); no route prefix lies in both D1 and the new prefix list. *)
  Alcotest.(check (list int))
    "boundary positions" [ 0; 2 ]
    (List.map (fun (q : D.question) -> q.position) bs);
  Alcotest.(check (list int))
    "boundary seqs" [ 10; 30 ]
    (List.map (fun (q : D.question) -> q.boundary_seq) bs);
  (* Each differential example really distinguishes its two options. *)
  List.iter
    (fun (q : D.question) ->
      check "options differ" false
        (Semantics.route_result_equal q.if_new_first q.if_old_first))
    bs

let test_disambiguate_to_fig2a () =
  let db, target, stanza = imported_paper_stanza () in
  let oracle = D.intent_driven (semantics_of fig2a_config) in
  match D.run ~db ~target ~stanza ~oracle () with
  | Error _ -> Alcotest.fail "disambiguation failed"
  | Ok o ->
      check_int "position 0 (top)" 0 o.position;
      check_int "two boundaries" 2 o.boundaries;
      check "question count logarithmic" true (List.length o.questions <= 2);
      (* The result is behaviourally the paper's Figure 2(a). *)
      let fig2a_db = parse_ok fig2a_config in
      let fig2a = Option.get (Database.route_map fig2a_db "ISP_OUT") in
      check "equals Figure 2(a)" true
        (Engine.Compare_route_policies.equal_behavior ~db_a:db ~db_b:fig2a_db
           o.map fig2a)

let test_disambiguate_to_fig2b () =
  let db, target, stanza = imported_paper_stanza () in
  let oracle = D.intent_driven (semantics_of fig2b_config) in
  match D.run ~db ~target ~stanza ~oracle () with
  | Error _ -> Alcotest.fail "disambiguation failed"
  | Ok o ->
      check_int "position 3 (bottom)" 3 o.position;
      let fig2b_db = parse_ok fig2b_config in
      let fig2b = Option.get (Database.route_map fig2b_db "ISP_OUT") in
      check "equals Figure 2(b)" true
        (Engine.Compare_route_policies.equal_behavior ~db_a:db ~db_b:fig2b_db
           o.map fig2b)

let test_top_bottom_mode () =
  let db, target, stanza = imported_paper_stanza () in
  (* Paper's §2.2 flow: one question comparing top vs bottom; choosing
     OPTION 1 (permit with metric 55) yields Figure 2(a). *)
  let oracle = D.intent_driven (semantics_of fig2a_config) in
  match D.run ~mode:D.Top_bottom ~db ~target ~stanza ~oracle () with
  | Error _ -> Alcotest.fail "disambiguation failed"
  | Ok o ->
      check_int "one question" 1 (List.length o.questions);
      check_int "top placement" 0 o.position;
      (* The differential example behaves like the paper's: denied in
         one option, permitted with metric 55 in the other. *)
      let q = List.hd o.questions in
      (match (q.if_new_first, q.if_old_first) with
      | Semantics.Accept r, Semantics.Reject ->
          check_int "metric 55" 55 r.Bgp.Route.metric
      | Semantics.Reject, Semantics.Accept _ -> ()
      | _ -> Alcotest.fail "expected permit-vs-deny options")

let test_linear_mode_detects_inconsistency () =
  let db, target, stanza = imported_paper_stanza () in
  (* Answers Prefer_new then Prefer_old violate monotonicity: want the
     new stanza to beat stanza 10 but lose to stanza 30 — impossible
     with a single insertion. *)
  let oracle = D.scripted [ D.Prefer_new; D.Prefer_old ] in
  match D.run ~mode:D.Linear ~db ~target ~stanza ~oracle () with
  | Error (D.Inconsistent_intent qs) -> check_int "both asked" 2 (List.length qs)
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected inconsistency"

let test_no_overlap_no_questions () =
  (* The new stanza dodges every existing stanza: its as-path list
     (exactly [44]) avoids stanza 10's _32$, 200.0.0.0/8 lies outside
     prefix-list D1 (stanza 20), and local-pref 100 misses stanza 30. *)
  let db =
    parse_ok
      (isp_out_config
     ^ "\nip prefix-list D9 permit 200.0.0.0/8\n\
        ip as-path access-list D8 permit ^44$\n")
  in
  let target = Option.get (Database.route_map db "ISP_OUT") in
  let stanza =
    Route_map.stanza ~seq:10
      ~matches:
        [
          Route_map.Match_prefix_list [ "D9" ];
          Route_map.Match_local_pref 100;
          Route_map.Match_as_path [ "D8" ];
        ]
      ~sets:[ Route_map.Set_metric 1 ]
      Action.Permit
  in
  let oracle _ = Alcotest.fail "no question expected" in
  match D.run ~db ~target ~stanza ~oracle () with
  | Ok o ->
      check_int "no boundaries" 0 o.boundaries;
      check_int "appended at bottom" 3 o.position
  | Error _ -> Alcotest.fail "disambiguation failed"

(* ------------------------------------------------------------------ *)
(* Property: the disambiguator finds a placement equivalent to any
   reachable target, with logarithmically many questions.             *)
(* ------------------------------------------------------------------ *)

let prop_disambiguator_recovers_placement =
  QCheck.Test.make ~name:"binary search recovers any desired placement"
    ~count:50
    QCheck.(int_range 0 3)
    (fun p ->
      let db, target, stanza = imported_paper_stanza () in
      let desired_map = Route_map.insert_at target p stanza in
      let desired r = Semantics.eval_route_map db desired_map r in
      let oracle = D.intent_driven desired in
      match D.run ~db ~target ~stanza ~oracle () with
      | Error _ -> false
      | Ok o ->
          Engine.Compare_route_policies.equal_behavior ~db_a:db ~db_b:db o.map
            desired_map
          && List.length o.questions <= 2 (* ceil log2(2 boundaries) + 1 *))

(* ------------------------------------------------------------------ *)
(* ACL disambiguation                                                 *)
(* ------------------------------------------------------------------ *)

let fw_config =
  {|
ip access-list extended FW
 deny tcp any any eq 23
 permit tcp 10.0.0.0/8 any
 deny udp any any
 permit udp 10.0.0.0/8 any eq 53
|}

let test_acl_boundaries () =
  let db = parse_ok fw_config in
  let target = Option.get (Database.acl db "FW") in
  (* New rule: deny tcp 10.0.0.0/8 any eq 22. Overlaps rule 20 (permit
     tcp 10/8) with conflict; rule 10 matches port 23 only (disjoint);
     udp rules disjoint by protocol. *)
  let rule =
    Acl.rule ~protocol:Packet.Tcp
      ~src:(Acl.addr_of_prefix (pfx "10.0.0.0/8"))
      ~dst:Acl.Any ~dst_port:(Acl.Eq 22) Action.Deny
  in
  let bs = Ad.boundaries ~target rule in
  Alcotest.(check (list int))
    "one boundary at rule 20" [ 1 ]
    (List.map (fun (q : Ad.question) -> q.position) bs)

let test_acl_disambiguate () =
  let db = parse_ok fw_config in
  let target = Option.get (Database.acl db "FW") in
  let rule =
    Acl.rule ~protocol:Packet.Tcp
      ~src:(Acl.addr_of_prefix (pfx "10.0.0.0/8"))
      ~dst:Acl.Any ~dst_port:(Acl.Eq 22) Action.Deny
  in
  (* The user wants SSH denied: the new rule must come before rule 20. *)
  let desired (p : Packet.t) =
    if p.Packet.protocol = Packet.Tcp && p.Packet.dst_port = 22 then
      Action.Deny
    else Semantics.eval_acl target p
  in
  match Ad.run ~target ~rule ~oracle:(Ad.intent_driven desired) () with
  | Error _ -> Alcotest.fail "acl disambiguation failed"
  | Ok o ->
      check_int "one question" 1 (List.length o.questions);
      check "ssh now denied" true
        (Semantics.eval_acl o.acl
           (Packet.make ~protocol:Packet.Tcp ~dst_port:22
              ~src:(Netaddr.Ipv4.of_string_exn "10.1.1.1")
              ~dst:(Netaddr.Ipv4.of_string_exn "8.8.8.8") ())
        = Action.Deny);
      check "http still permitted" true
        (Semantics.eval_acl o.acl
           (Packet.make ~protocol:Packet.Tcp ~dst_port:80
              ~src:(Netaddr.Ipv4.of_string_exn "10.1.1.1")
              ~dst:(Netaddr.Ipv4.of_string_exn "8.8.8.8") ())
        = Action.Permit)

(* ------------------------------------------------------------------ *)
(* Full pipeline on the paper's running example                       *)
(* ------------------------------------------------------------------ *)

let run_paper_pipeline ?(faults = []) ~oracle () =
  let llm = Llm.Mock_llm.create ~faults () in
  let db = parse_ok isp_out_config in
  P.run_route_map_update ~llm ~oracle ~db ~target:"ISP_OUT"
    ~prompt:paper_prompt ()

let test_pipeline_clean () =
  let oracle = D.intent_driven (semantics_of fig2a_config) in
  match run_paper_pipeline ~oracle () with
  | Error e -> Alcotest.fail (P.error_to_string e)
  | Ok r ->
      check_int "single synthesis attempt" 1 r.P.synthesis_attempts;
      check_int "three llm calls (classify, spec, synth)" 3 r.P.llm_calls;
      check_int "placed on top" 0 r.P.position;
      check_int "two boundaries" 2 r.P.boundaries;
      let fig2a_db = parse_ok fig2a_config in
      let fig2a = Option.get (Database.route_map fig2a_db "ISP_OUT") in
      check "behaviour equals Figure 2(a)" true
        (Engine.Compare_route_policies.equal_behavior ~db_a:r.P.db
           ~db_b:fig2a_db r.P.map fig2a);
      (* The inserted lists follow the paper's D2/D3 naming. *)
      check "renamed to D2/D3" true
        (List.sort compare (List.map snd r.P.renaming) = [ "D2"; "D3" ])

let test_pipeline_repairs_faults () =
  let oracle = D.intent_driven (semantics_of fig2b_config) in
  let faults =
    [ Llm.Fault_injector.Mask_off_by_one; Llm.Fault_injector.Syntax_error ]
  in
  match run_paper_pipeline ~faults ~oracle () with
  | Error e -> Alcotest.fail (P.error_to_string e)
  | Ok r ->
      check_int "three synthesis attempts" 3 r.P.synthesis_attempts;
      check_int "two failures recorded" 2
        (List.length r.P.verification_history);
      check_int "placed at bottom" 3 r.P.position;
      let fig2b_db = parse_ok fig2b_config in
      let fig2b = Option.get (Database.route_map fig2b_db "ISP_OUT") in
      check "behaviour equals Figure 2(b)" true
        (Engine.Compare_route_policies.equal_behavior ~db_a:r.P.db
           ~db_b:fig2b_db r.P.map fig2b)

let test_pipeline_exhausts_attempts () =
  let oracle _ = Alcotest.fail "should not reach disambiguation" in
  let faults = List.init 10 (fun _ -> Llm.Fault_injector.Flip_action) in
  match run_paper_pipeline ~faults ~oracle () with
  | Error (P.Verification_exhausted history) ->
      check_int "default attempt budget" P.default_max_attempts
        (List.length history)
  | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e)
  | Ok _ -> Alcotest.fail "expected exhaustion"

let test_pipeline_wrong_target () =
  let oracle _ = D.Prefer_new in
  let llm = Llm.Mock_llm.create () in
  let db = parse_ok isp_out_config in
  match
    P.run_route_map_update ~llm ~oracle ~db ~target:"NOPE" ~prompt:paper_prompt ()
  with
  | Error (P.Target_not_found _) -> ()
  | _ -> Alcotest.fail "expected Target_not_found"

let test_pipeline_acl () =
  let llm = Llm.Mock_llm.create () in
  let db = parse_ok fw_config in
  let target_acl = Option.get (Database.acl db "FW") in
  let desired (p : Packet.t) =
    if p.Packet.protocol = Packet.Tcp && p.Packet.dst_port = 22 then Action.Deny
    else Semantics.eval_acl target_acl p
  in
  match
    P.run_acl_update ~llm ~oracle:(Ad.intent_driven desired) ~db ~target:"FW"
      ~prompt:
        "Write an access list rule that denies tcp traffic from 10.0.0.0/8 \
         to any destination with destination port 22."
      ()
  with
  | Error e -> Alcotest.fail (P.error_to_string e)
  | Ok r ->
      check_int "one attempt" 1 r.P.synthesis_attempts;
      check "ssh denied" true
        (Semantics.eval_acl r.P.acl
           (Packet.make ~protocol:Packet.Tcp ~dst_port:22
              ~src:(Netaddr.Ipv4.of_string_exn "10.2.3.4")
              ~dst:(Netaddr.Ipv4.of_string_exn "1.1.1.1") ())
        = Action.Deny)

(* Sequential multi-stanza insertion: contiguous block case from §4. *)
let test_sequential_contiguous_inserts () =
  let db = parse_ok isp_out_config in
  let llm = Llm.Mock_llm.create () in
  let prompts =
    [
      "Write a route-map stanza that permits routes containing the prefix \
       100.0.0.0/16 with mask length less than or equal to 23 and tagged \
       with the community 300:3. Their MED value should be set to 55.";
      "Write a route-map stanza that permits routes containing the prefix \
       100.1.0.0/16 with mask length less than or equal to 23 and tagged \
       with the community 300:4. Their MED value should be set to 56.";
    ]
  in
  (* Both updates want their stanza to win over everything: top block. *)
  let oracle _ = D.Prefer_new in
  let final =
    List.fold_left
      (fun db prompt ->
        match
          P.run_route_map_update ~llm ~oracle ~db ~target:"ISP_OUT" ~prompt ()
        with
        | Ok r -> r.P.db
        | Error e -> Alcotest.fail (P.error_to_string e))
      db prompts
  in
  let rm = Option.get (Database.route_map final "ISP_OUT") in
  check_int "five stanzas" 5 (List.length rm.Route_map.stanzas);
  (* Both new routes behave as intended. *)
  let r1 =
    Bgp.Route.make ~as_path:[ 32 ] ~communities:[ comm "300:3" ]
      (pfx "100.0.0.0/16")
  in
  let r2 =
    Bgp.Route.make ~as_path:[ 32 ] ~communities:[ comm "300:4" ]
      (pfx "100.1.0.0/16")
  in
  (match Semantics.eval_route_map final rm r1 with
  | Semantics.Accept r -> check_int "metric 55" 55 r.Bgp.Route.metric
  | Semantics.Reject -> Alcotest.fail "r1 should be accepted");
  match Semantics.eval_route_map final rm r2 with
  | Semantics.Accept r -> check_int "metric 56" 56 r.Bgp.Route.metric
  | Semantics.Reject -> Alcotest.fail "r2 should be accepted"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "clarify"
    [
      ( "naming",
        [
          Alcotest.test_case "fresh names" `Quick test_fresh_names;
          Alcotest.test_case "import snippet" `Quick test_import_snippet;
        ] );
      ( "disambiguator",
        [
          Alcotest.test_case "boundaries" `Quick test_boundaries_found;
          Alcotest.test_case "to Figure 2(a)" `Quick test_disambiguate_to_fig2a;
          Alcotest.test_case "to Figure 2(b)" `Quick test_disambiguate_to_fig2b;
          Alcotest.test_case "top/bottom mode" `Quick test_top_bottom_mode;
          Alcotest.test_case "linear detects inconsistency" `Quick
            test_linear_mode_detects_inconsistency;
          Alcotest.test_case "no overlap, no questions" `Quick
            test_no_overlap_no_questions;
          q prop_disambiguator_recovers_placement;
        ] );
      ( "acl-disambiguator",
        [
          Alcotest.test_case "boundaries" `Quick test_acl_boundaries;
          Alcotest.test_case "insert ssh deny" `Quick test_acl_disambiguate;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "paper example, clean LLM" `Quick test_pipeline_clean;
          Alcotest.test_case "repairs injected faults" `Quick
            test_pipeline_repairs_faults;
          Alcotest.test_case "gives up after budget" `Quick
            test_pipeline_exhausts_attempts;
          Alcotest.test_case "unknown target" `Quick test_pipeline_wrong_target;
          Alcotest.test_case "acl update" `Quick test_pipeline_acl;
          Alcotest.test_case "sequential contiguous inserts" `Quick
            test_sequential_contiguous_inserts;
        ] );
    ]
