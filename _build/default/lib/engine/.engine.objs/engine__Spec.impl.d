lib/engine/spec.ml: Bgp Config Format Json List Netaddr Option Printf Sre String
