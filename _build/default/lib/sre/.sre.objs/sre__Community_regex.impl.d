lib/sre/community_regex.ml: Alphabet Char Format List Netaddr Option Printf Regex String
