(** Experiments E2 and E3 — the paper's Section 3 overlap measurements,
    regenerated on the calibrated synthetic corpora. Each row pairs the
    paper's reported value with the measured one. *)

type row = { quantity : string; paper : string; measured : string }

let pct a b =
  if b = 0 then "0.0%" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int a /. float_of_int b)

let cloud ?seed ?pool () =
  let corpus = Workload.Cloud.generate ?seed () in
  let a = Overlap.Corpus.summarize_acls ?pool corpus.Workload.Cloud.acls in
  let r =
    Overlap.Corpus.summarize_route_maps ?pool corpus.Workload.Cloud.route_map_db
      corpus.Workload.Cloud.route_maps
  in
  [
    { quantity = "ACLs examined"; paper = "237"; measured = string_of_int a.Overlap.Corpus.total };
    {
      quantity = "ACLs with >=1 overlap";
      paper = "69";
      measured = string_of_int a.Overlap.Corpus.with_overlaps;
    };
    {
      quantity = "ACLs with >20 overlaps";
      paper = "48";
      measured = string_of_int a.Overlap.Corpus.heavy_overlaps;
    };
    {
      quantity = "max overlapping pairs in one ACL";
      paper = ">100";
      measured = string_of_int a.Overlap.Corpus.max_overlaps;
    };
    {
      quantity = "route-maps examined";
      paper = "800";
      measured = string_of_int r.Overlap.Corpus.rm_total;
    };
    {
      quantity = "route-maps with overlaps";
      paper = "140";
      measured = string_of_int r.Overlap.Corpus.rm_with_overlaps;
    };
    {
      quantity = "route-maps with >20 overlaps";
      paper = "3";
      measured = string_of_int r.Overlap.Corpus.rm_heavy_overlaps;
    };
  ]

let campus ?seed ?(scale = 1.0) ?pool () =
  let corpus = Workload.Campus.generate ?seed ~scale () in
  let a = Overlap.Corpus.summarize_acls ?pool corpus.Workload.Campus.acls in
  let r =
    Overlap.Corpus.summarize_route_maps ?pool
      corpus.Workload.Campus.route_map_db corpus.Workload.Campus.route_maps
  in
  [
    {
      quantity = "ACLs examined";
      paper = "11088";
      measured = string_of_int a.Overlap.Corpus.total;
    };
    {
      quantity = "ACLs with conflicting overlaps";
      paper = "37.7%";
      measured = pct a.Overlap.Corpus.with_conflicts a.Overlap.Corpus.total;
    };
    {
      quantity = "of those, with >20 conflicts";
      paper = "27%";
      measured = pct a.Overlap.Corpus.heavy_conflicts a.Overlap.Corpus.with_conflicts;
    };
    {
      quantity = "ACLs with non-trivial overlaps";
      paper = "18.6%";
      measured = pct a.Overlap.Corpus.with_nontrivial a.Overlap.Corpus.total;
    };
    {
      quantity = "of those, with >20";
      paper = "16.3%";
      measured = pct a.Overlap.Corpus.heavy_nontrivial a.Overlap.Corpus.with_nontrivial;
    };
    {
      quantity = "route-maps examined";
      paper = "169";
      measured = string_of_int r.Overlap.Corpus.rm_total;
    };
    {
      quantity = "route-maps with overlapping stanzas";
      paper = "2";
      measured = string_of_int r.Overlap.Corpus.rm_with_overlaps;
    };
    {
      quantity = "max stanza pairs in one route-map";
      paper = "3";
      measured = string_of_int r.Overlap.Corpus.rm_max_overlaps;
    };
  ]

let print ~title fmt rows =
  Format.fprintf fmt "=== %s ===@." title;
  Format.fprintf fmt "%-40s %10s %10s@." "quantity" "paper" "measured";
  List.iter
    (fun r -> Format.fprintf fmt "%-40s %10s %10s@." r.quantity r.paper r.measured)
    rows;
  Format.fprintf fmt "@."
