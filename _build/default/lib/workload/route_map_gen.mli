(** Synthetic route-map generation with exact overlap accounting.

    Building blocks: [disjoint] stanzas on private exact prefixes (no
    overlaps), [windows] pairs of stanzas with nested prefix-length
    windows (one overlap per pair, conflicting when the actions differ),
    and an optional match-everything [catch_all] permit stanza
    (overlapping every other stanza). *)

type built = {
  db : Config.Database.t; (* accumulated prefix lists *)
  route_map : Config.Route_map.t;
}

val make :
  db:Config.Database.t ->
  name:string ->
  disjoint:Config.Action.t list ->
  windows:(Config.Action.t * Config.Action.t) list ->
  catch_all:bool ->
  built

val expected :
  disjoint:Config.Action.t list ->
  windows:(Config.Action.t * Config.Action.t) list ->
  catch_all:bool ->
  int
(** The overlap-pair count the analyzer will report. *)

val triple_overlap : db:Config.Database.t -> name:string -> built
(** The campus corpus's distinguished map: three pairwise-overlapping
    stanzas (permit, deny, deny) — three overlaps, two conflicting. *)
