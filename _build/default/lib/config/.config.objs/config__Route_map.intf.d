lib/config/route_map.mli: Action Bgp Format Netaddr
