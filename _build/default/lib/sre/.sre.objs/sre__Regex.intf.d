lib/sre/regex.mli: Alphabet Format
