(** System prompts and few-shot examples, retrieved per query type — the
    paper's step 2 ("retrieve the corresponding system prompts and
    examples from a database"). *)

type entry = {
  system : string;
  few_shot : (string * string) list; (* (user prompt, assistant answer) *)
}

let route_map_entry =
  {
    system =
      "You are a Cisco IOS configuration assistant. Generate exactly one \
       route-map stanza in Cisco IOS syntax, together with any ancillary \
       prefix-lists, community-lists or as-path access-lists it needs. Do \
       not reference any existing configuration.";
    few_shot =
      [
        ( "Write a route-map stanza that denies routes originating from AS \
           65010.",
          "ip as-path access-list AS_LIST permit _65010$\n\
           route-map DENY deny 10\n\
          \ match as-path AS_LIST\n" );
        ( "Write a route-map stanza that permits routes containing the \
           prefix 10.0.0.0/8 with mask length less than or equal to 24. \
           Their local preference should be set to 200.",
          "ip prefix-list PREFIX_10 seq 10 permit 10.0.0.0/8 le 24\n\
           route-map SET_LP permit 10\n\
          \ match ip address prefix-list PREFIX_10\n\
          \ set local-preference 200\n" );
      ];
  }

let acl_entry =
  {
    system =
      "You are a Cisco IOS configuration assistant. Generate exactly one \
       extended access-list rule in Cisco IOS syntax. Do not reference any \
       existing configuration.";
    few_shot =
      [
        ( "Write an access list rule that permits tcp traffic from \
           10.0.0.0/8 to any destination with destination port 443.",
          "ip access-list extended SYNTH_ACL\n\
          \ permit tcp 10.0.0.0 0.255.255.255 any eq 443\n" );
        ( "Write an access list rule that denies udp traffic from anywhere \
           to host 192.168.1.1.",
          "ip access-list extended SYNTH_ACL\n\
          \ deny udp any host 192.168.1.1\n" );
      ];
  }

let retrieve = function `Route_map -> route_map_entry | `Acl -> acl_entry
