type t = { asn : int; value : int }

let make asn value =
  if asn < 0 || asn > 65535 || value < 0 || value > 65535 then
    invalid_arg "Community.make: halves must fit 16 bits";
  { asn; value }

let of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a >= 0 && a <= 65535 && b >= 0 && b <= 65535 ->
          Some (make a b)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Community.of_string_exn: %S" s)

let to_string c = Printf.sprintf "%d:%d" c.asn c.value
let to_pair c = (c.asn, c.value)
let no_export = make 65535 65281
let no_advertise = make 65535 65282

let compare a b =
  match Int.compare a.asn b.asn with
  | 0 -> Int.compare a.value b.value
  | c -> c

let equal a b = compare a b = 0
let pp fmt c = Format.pp_print_string fmt (to_string c)
