lib/sre/regex.ml: Alphabet Array Format List Map Option Queue
