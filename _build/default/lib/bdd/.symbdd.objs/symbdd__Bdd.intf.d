lib/bdd/bdd.mli: Format Seq
