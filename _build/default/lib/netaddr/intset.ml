(* Invariant: intervals are sorted, non-overlapping, non-adjacent, and
   each pair (lo, hi) satisfies 0 <= lo <= hi. *)
type t = (int * int) list

let empty = []
let is_empty t = t = []

let range lo hi =
  if lo < 0 || lo > hi then invalid_arg "Intset.range";
  [ (lo, hi) ]

let singleton n = range n n
let full ~max = range 0 max

(* Merge a sorted list of possibly overlapping/adjacent intervals. *)
let normalize ivs =
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) ivs in
  let rec merge = function
    | (l1, h1) :: (l2, h2) :: rest when l2 <= h1 + 1 ->
        merge ((l1, max h1 h2) :: rest)
    | iv :: rest -> iv :: merge rest
    | [] -> []
  in
  merge sorted

let of_list ns = normalize (List.map (fun n -> (n, n)) ns)

let rec mem n = function
  | [] -> false
  | (lo, hi) :: rest -> (n >= lo && n <= hi) || (n > hi && mem n rest)

let union a b = normalize (a @ b)

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | (l1, h1) :: ra, (l2, h2) :: rb ->
      let lo = max l1 l2 and hi = min h1 h2 in
      let rest =
        if h1 < h2 then inter ra b
        else if h2 < h1 then inter a rb
        else inter ra rb
      in
      if lo <= hi then (lo, hi) :: rest else rest

let compl ~max t =
  let rec go next = function
    | [] -> if next <= max then [ (next, max) ] else []
    | (lo, hi) :: rest ->
        let tail = go (hi + 1) rest in
        if next < lo then (next, lo - 1) :: tail else tail
  in
  go 0 t

let diff a b =
  match a with
  | [] -> []
  | _ ->
      let max = List.fold_left (fun m (_, hi) -> Stdlib.max m hi) 0 (a @ b) in
      inter a (compl ~max b)

let choose = function [] -> None | (lo, _) :: _ -> Some lo
let cardinal t = List.fold_left (fun n (lo, hi) -> n + hi - lo + 1) 0 t
let intervals t = t
let equal = ( = )
let compare = Stdlib.compare
let hash = Hashtbl.hash
let subset a b = is_empty (diff a b)

let pp fmt t =
  let pp_iv fmt (lo, hi) =
    if lo = hi then Format.fprintf fmt "%d" lo
    else Format.fprintf fmt "%d-%d" lo hi
  in
  Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:(fun f () ->
    Format.pp_print_string f ",") pp_iv) t
