(** Unsigned bit-vector predicates over BDD variables.

    A bit-vector is an array of BDD variable indices, most significant
    bit first. All constants are non-negative OCaml ints and must fit in
    the vector's width. *)

type t = private int array

val make : int array -> t
(** Wrap variable indices (MSB first). @raise Invalid_argument on an
    empty array or a negative index. *)

val sequential : first:int -> width:int -> t
(** Variables [first, first+1, ..., first+width-1]. *)

val width : t -> int
val vars : t -> int list

val eq_const : t -> int -> Bdd.t
(** [eq_const bv n]: the vector equals [n]. *)

val le_const : t -> int -> Bdd.t
val ge_const : t -> int -> Bdd.t

val in_range : t -> int -> int -> Bdd.t
(** [in_range bv lo hi]: [lo <= bv <= hi]. @raise Invalid_argument if
    [lo > hi]. *)

val prefix_match : t -> value:int -> len:int -> Bdd.t
(** Constrain the [len] most significant bits to those of [value]
    (itself interpreted as a full-width constant). *)

val decode : t -> (int * bool) list -> int
(** Read the vector's value back from a partial assignment; unassigned
    bits default to 0. *)

val check_const : t -> int -> unit
(** @raise Invalid_argument if the constant does not fit the width. *)
