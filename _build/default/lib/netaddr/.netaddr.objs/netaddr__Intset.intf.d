lib/netaddr/intset.mli: Format
