lib/sre/community_regex.mli: Alphabet Format Regex
